// Micro-benchmarks (google-benchmark) for the numerical kernels the
// recovery schemes execute: SpMV (the CG inner loop), BLAS-1 ops, the
// dense factorizations behind the exact LI/LSI baselines, and the local
// CG construction solves of §4.1. These measure real wall time of this
// library's kernels, complementing the virtual-time experiment benches.
//
// Besides the usual console table, the binary writes the standardized
// BENCH JSON artifact (schema below) to BENCH_micro_kernels.json in the
// working directory — override the path with RSLS_BENCH_JSON. CI and
// perf-tracking scripts consume that file instead of scraping stdout.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "core/env.hpp"
#include "core/rng.hpp"
#include "core/version.hpp"
#include "obs/json.hpp"
#include "la/factor.hpp"
#include "la/local_cg.hpp"
#include "la/qr.hpp"
#include "sparse/dense.hpp"
#include "sparse/generators.hpp"
#include "sparse/ordering.hpp"
#include "sparse/spmv_kernel.hpp"
#include "sparse/vector_ops.hpp"

namespace {

using namespace rsls;

sparse::Csr make_matrix(Index n, Index hb) {
  sparse::BandedSpdConfig config;
  config.n = n;
  config.half_bandwidth = hb;
  config.diag_excess = 1e-2;
  config.seed = 42;
  return sparse::banded_spd(config);
}

void BM_Spmv(benchmark::State& state) {
  const Index n = state.range(0);
  const sparse::Csr a = make_matrix(n, 11);
  RealVec x(static_cast<std::size_t>(n), 1.0);
  RealVec y(static_cast<std::size_t>(n));
  for (auto _ : state) {
    sparse::spmv(a, x, y);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(state.iterations() * a.nnz());
}
BENCHMARK(BM_Spmv)->Arg(1024)->Arg(8192)->Arg(65536);

/// One registered SpMV kernel from the registry (DESIGN.md §17): same
/// matrix and sizes as BM_Spmv so the variants read side by side. The
/// csr-scalar row should track BM_Spmv; sell-c-sigma pays a prepare()
/// (outside the timed loop, as in the harness) and wins on long rows.
void BM_SpmvKernel(benchmark::State& state, const std::string& kernel) {
  const Index n = state.range(0);
  const sparse::Csr a = make_matrix(n, 11);
  const auto plan = sparse::spmv_kernel_or_throw(kernel).prepare(a);
  RealVec x(static_cast<std::size_t>(n), 1.0);
  RealVec y(static_cast<std::size_t>(n));
  for (auto _ : state) {
    plan->spmv(x, y);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(state.iterations() * a.nnz());
}
BENCHMARK_CAPTURE(BM_SpmvKernel, csr_scalar, "csr-scalar")
    ->Arg(1024)
    ->Arg(8192)
    ->Arg(65536);
BENCHMARK_CAPTURE(BM_SpmvKernel, csr_simd, "csr-simd")
    ->Arg(1024)
    ->Arg(8192)
    ->Arg(65536);
BENCHMARK_CAPTURE(BM_SpmvKernel, sell_c_sigma, "sell-c-sigma")
    ->Arg(1024)
    ->Arg(8192)
    ->Arg(65536);

void BM_SpmvTranspose(benchmark::State& state) {
  const Index n = state.range(0);
  const sparse::Csr a = make_matrix(n, 11);
  RealVec x(static_cast<std::size_t>(n), 1.0);
  RealVec y(static_cast<std::size_t>(n));
  for (auto _ : state) {
    sparse::spmv_transpose(a, x, y);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(state.iterations() * a.nnz());
}
BENCHMARK(BM_SpmvTranspose)->Arg(8192);

void BM_Dot(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  RealVec x(n, 1.5);
  RealVec y(n, 2.5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sparse::dot(x, y));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Dot)->Arg(4096)->Arg(262144);

void BM_Axpy(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  RealVec x(n, 1.5);
  RealVec y(n, 2.5);
  for (auto _ : state) {
    sparse::axpy(0.999, x, y);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Axpy)->Arg(4096)->Arg(262144);

void BM_LuFactor(benchmark::State& state) {
  const Index m = state.range(0);
  const sparse::Dense dense = sparse::to_dense(make_matrix(m, 8));
  for (auto _ : state) {
    la::Lu lu(dense);
    benchmark::DoNotOptimize(&lu);
  }
}
BENCHMARK(BM_LuFactor)->Arg(64)->Arg(256);

void BM_CholeskyFactor(benchmark::State& state) {
  const Index m = state.range(0);
  const sparse::Dense dense = sparse::to_dense(make_matrix(m, 8));
  for (auto _ : state) {
    la::Cholesky chol(dense);
    benchmark::DoNotOptimize(&chol);
  }
}
BENCHMARK(BM_CholeskyFactor)->Arg(64)->Arg(256);

void BM_QrLeastSquares(benchmark::State& state) {
  const Index m = state.range(0);
  // Tall least-squares problem, like the LSI column slice.
  const Index rows = m * 8;
  sparse::Dense a(rows, m);
  Rng rng(7);
  for (Index i = 0; i < rows; ++i) {
    for (Index j = 0; j < m; ++j) {
      a(i, j) = rng.uniform(-1.0, 1.0);
    }
    a(i, i % m) += 4.0;
  }
  RealVec b(static_cast<std::size_t>(rows), 1.0);
  for (auto _ : state) {
    la::Qr qr(a);
    benchmark::DoNotOptimize(qr.solve_least_squares(b));
  }
}
BENCHMARK(BM_QrLeastSquares)->Arg(32)->Arg(96);

void BM_LocalCgConstructionLi(benchmark::State& state) {
  // The §4.1 LI construction: local CG on a diagonal block.
  const Index m = state.range(0);
  const sparse::Csr block = make_matrix(m, 8);
  RealVec y(static_cast<std::size_t>(m), 1.0);
  la::LocalCgOptions options;
  options.tolerance = 1e-6;
  for (auto _ : state) {
    RealVec z(static_cast<std::size_t>(m), 0.0);
    const auto result = la::local_cg(
        [&block](std::span<const Real> in, std::span<Real> out) {
          sparse::spmv(block, in, out);
        },
        y, z, options);
    benchmark::DoNotOptimize(result.iterations);
  }
}
BENCHMARK(BM_LocalCgConstructionLi)->Arg(64)->Arg(512);

void BM_LocalCgConstructionLsi(benchmark::State& state) {
  // The §4.1 LSI construction: local CG on A_rows·A_rowsᵀ (Eq. 21).
  const Index n = 4096;
  const Index m = state.range(0);
  const sparse::Csr a = make_matrix(n, 11);
  const sparse::Csr rows = sparse::extract_rows(a, 0, m);
  RealVec beta(static_cast<std::size_t>(n), 1.0);
  RealVec rhs(static_cast<std::size_t>(m));
  sparse::spmv(rows, beta, rhs);
  RealVec t(static_cast<std::size_t>(n));
  la::LocalCgOptions options;
  options.tolerance = 1e-6;
  for (auto _ : state) {
    RealVec z(static_cast<std::size_t>(m), 0.0);
    const auto result = la::local_cg(
        [&rows, &t](std::span<const Real> in, std::span<Real> out) {
          sparse::spmv_transpose(rows, in, t);
          sparse::spmv(rows, t, out);
        },
        rhs, z, options);
    benchmark::DoNotOptimize(result.iterations);
  }
}
BENCHMARK(BM_LocalCgConstructionLsi)->Arg(64)->Arg(256);

void BM_AssembleBanded(benchmark::State& state) {
  const Index n = state.range(0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(make_matrix(n, 11).nnz());
  }
}
BENCHMARK(BM_AssembleBanded)->Arg(4096);

void BM_ExtractDiagonalBlock(benchmark::State& state) {
  const sparse::Csr a = make_matrix(16384, 11);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        sparse::extract_block(a, 8000, 8200, 8000, 8200).nnz());
  }
}
BENCHMARK(BM_ExtractDiagonalBlock);

void BM_Transpose(benchmark::State& state) {
  const sparse::Csr a = make_matrix(8192, 11);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sparse::transpose(a).nnz());
  }
}
BENCHMARK(BM_Transpose);

void BM_RcmOrdering(benchmark::State& state) {
  const Index n = state.range(0);
  const sparse::Csr a = make_matrix(n, 8);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sparse::rcm_ordering(a).size());
  }
}
BENCHMARK(BM_RcmOrdering)->Arg(4096)->Arg(32768);

void BM_PermuteSymmetric(benchmark::State& state) {
  const Index n = state.range(0);
  const sparse::Csr a = make_matrix(n, 8);
  const IndexVec perm = sparse::rcm_ordering(a);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sparse::permute_symmetric(a, perm).nnz());
  }
}
BENCHMARK(BM_PermuteSymmetric)->Arg(8192);

void BM_CompressColumns(benchmark::State& state) {
  const sparse::Csr a = make_matrix(16384, 8);
  const sparse::Csr rows = sparse::extract_rows(a, 8000, 8400);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sparse::compress_columns(rows).matrix.nnz());
  }
}
BENCHMARK(BM_CompressColumns);

void BM_LocalPcgConstruction(benchmark::State& state) {
  // The Jacobi-preconditioned LSI construction on a scaled block.
  const Index m = state.range(0);
  sparse::BandedSpdConfig config;
  config.n = m;
  config.half_bandwidth = 8;
  config.diag_excess = 1e-2;
  config.scale_decades = 1.5;
  config.seed = 42;
  const sparse::Csr block = sparse::banded_spd(config);
  RealVec inv_diag = sparse::diagonal(block);
  for (Real& v : inv_diag) {
    v = 1.0 / v;
  }
  RealVec y(static_cast<std::size_t>(m), 1.0);
  la::LocalCgOptions options;
  options.tolerance = 1e-8;
  for (auto _ : state) {
    RealVec z(static_cast<std::size_t>(m), 0.0);
    const auto result = la::local_pcg(
        [&block](std::span<const Real> in, std::span<Real> out) {
          sparse::spmv(block, in, out);
        },
        inv_diag, y, z, options);
    benchmark::DoNotOptimize(result.iterations);
  }
}
BENCHMARK(BM_LocalPcgConstruction)->Arg(256);

/// Console output plus a copy of every per-iteration run for the JSON
/// artifact (aggregates and errored runs are not collected).
class TeeReporter : public benchmark::ConsoleReporter {
 public:
  void ReportRuns(const std::vector<Run>& runs) override {
    benchmark::ConsoleReporter::ReportRuns(runs);
    for (const Run& run : runs) {
      if (run.run_type == Run::RT_Iteration && !run.error_occurred) {
        collected_.push_back(run);
      }
    }
  }

  const std::vector<Run>& collected() const { return collected_; }

 private:
  std::vector<Run> collected_;
};

/// Standardized bench schema (schema_version 1):
///   {"schema_version":1, "source":"micro_kernels",
///    "results":[{"name":..., "iterations":N, "real_time_s":...,
///                "cpu_time_s":..., "counters":{...}}]}
/// Times are seconds per iteration; counters (items_per_second, …) are
/// google-benchmark's finalized values.
void write_bench_json(
    const std::vector<benchmark::BenchmarkReporter::Run>& runs) {
  const std::string path =
      rsls::env::bench_json_path().value_or("BENCH_micro_kernels.json");
  std::ofstream os(path);
  if (!os.good()) {
    std::fprintf(stderr, "micro_kernels: cannot open %s for writing\n",
                 path.c_str());
    return;
  }
  rsls::obs::JsonWriter json(os);
  json.begin_object();
  json.field("schema_version", 1);
  json.field("source", "micro_kernels");
  json.field("git_describe", rsls::build::git_describe());
  json.begin_array("results");
  for (const auto& run : runs) {
    const double iterations =
        run.iterations > 0 ? static_cast<double>(run.iterations) : 1.0;
    json.begin_object();
    json.field("name", run.benchmark_name());
    json.field("iterations", static_cast<std::int64_t>(run.iterations));
    json.field("real_time_s", run.real_accumulated_time / iterations);
    json.field("cpu_time_s", run.cpu_accumulated_time / iterations);
    json.begin_object("counters");
    for (const auto& [name, counter] : run.counters) {
      json.field(name, static_cast<double>(counter));
    }
    json.end_object();
    json.end_object();
  }
  json.end_array();
  json.end_object();
  os << '\n';
  std::fprintf(stderr, "micro_kernels: wrote %zu results to %s\n",
               runs.size(), path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) {
    return 1;
  }
  TeeReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  write_bench_json(reporter.collected());
  benchmark::Shutdown();
  return 0;
}
