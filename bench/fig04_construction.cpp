// Figure 4 — time-to-solution of the CG-based construction algorithms
// (§4.1) against the exact prior-work baselines, on matrix Kuu with 5
// faults, across construction accuracies.
//
// Paper: LI/LSI (CG) vs LI (LU) / LSI (QR); the CG-based local solves are
// 4–15 % faster to the same end accuracy because the exact solution of an
// interpolation system is unnecessary — the interpolant itself only
// approximates the lost data. Run at 96 processes, where the lost-block
// size puts the exact factorizations in the paper's cost regime (a few
// percent of the total solve).
//
// The sweep repeats along the solver-variant axis (classic vs pipelined
// PCG, the PR 9 follow-on): each variant gets its own fault-free
// baseline, so time ratios always compare like against like.

#include <iostream>

#include "core/csv.hpp"
#include "core/env.hpp"
#include "core/options.hpp"
#include "core/table.hpp"
#include "harness/experiment.hpp"
#include "harness/scheme_factory.hpp"
#include "resilience/fault.hpp"
#include "solver/cg.hpp"
#include "sparse/roster.hpp"

namespace {

rsls::harness::SchemeRun run_one(const rsls::harness::Workload& workload,
                                 const std::string& name,
                                 const rsls::harness::ExperimentConfig& config,
                                 const rsls::harness::FfBaseline& ff,
                                 double tolerance) {
  using namespace rsls;
  harness::ExperimentConfig run_config = config;
  run_config.scheme.fw_cg_tolerance = tolerance;
  return harness::run_scheme(workload, name, run_config, ff);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace rsls;
  const Options options(argc, argv);
  const bool quick = quick_mode() || options.get_bool("quick", false);

  harness::ExperimentConfig base_config;
  base_config.processes = options.get_index("processes", 96);
  base_config.faults = options.get_index("faults", 5);

  const auto& entry = sparse::roster_entry("Kuu");
  const auto workload =
      harness::Workload::create(entry.make(quick), base_config.processes);

  std::cout << "Figure 4: construction algorithms on " << entry.name << " ("
            << base_config.processes << " processes, " << base_config.faults
            << " faults), swept along the solver-variant axis\n\n";

  TablePrinter table({"solver", "scheme", "construct tol", "time x FF",
                      "t_const (us)", "final residual"});
  struct Point {
    std::string solver;
    std::string scheme;
    double tol;
    double time_ratio;
    double t_const_us;
    double residual;
  };
  std::vector<Point> points;

  bool all_pass = true;
  for (const auto& variant : solver::solver_variant_names()) {
    harness::ExperimentConfig config = base_config;
    config.solver = variant;
    const auto ff = harness::run_fault_free(workload, config);
    std::cout << variant
              << ": FF time = " << TablePrinter::num(ff.time * 1e3, 3)
              << " ms\n";

    const auto record = [&](const std::string& name, double tol) {
      const auto run = run_one(workload, name, config, ff, tol);
      points.push_back({variant, name, tol, run.time_ratio,
                        run.t_const_mean * 1e6,
                        run.report.cg.relative_residual});
      table.add_row({variant, name,
                     name == "LI" || name == "LSI" ? TablePrinter::num(tol, 8)
                                                   : "exact",
                     TablePrinter::num(run.time_ratio, 3),
                     TablePrinter::num(run.t_const_mean * 1e6, 1),
                     TablePrinter::num(run.report.cg.relative_residual, 2)});
    };

    // Exact baselines (prior work [2]).
    record("LI(LU)", 0.0);
    record("LSI(QR)", 0.0);
    // CG-based local construction across tolerances (§4.1).
    for (const double tol : {1e-2, 1e-4, 1e-6, 1e-8}) {
      record("LI", tol);
    }
    for (const double tol : {1e-2, 1e-4, 1e-6, 1e-8}) {
      record("LSI", tol);
    }

    // Shape: within each solver variant, the best CG-based construction
    // beats its exact baseline in total time (paper: 4–15 %).
    double li_lu = 0.0;
    double lsi_qr = 0.0;
    double li_cg_best = 1e9;
    double lsi_cg_best = 1e9;
    for (const auto& p : points) {
      if (p.solver != variant) {
        continue;
      }
      if (p.scheme == "LI(LU)") li_lu = p.time_ratio;
      if (p.scheme == "LSI(QR)") lsi_qr = p.time_ratio;
      if (p.scheme == "LI") li_cg_best = std::min(li_cg_best, p.time_ratio);
      if (p.scheme == "LSI") lsi_cg_best = std::min(lsi_cg_best, p.time_ratio);
    }
    const bool li_wins = li_cg_best < li_lu;
    const bool lsi_wins = lsi_cg_best < lsi_qr;
    all_pass = all_pass && li_wins && lsi_wins;
    std::cout << "shape-check[" << variant << "]: LI(CG) faster than LI(LU) "
              << (li_wins ? "PASS" : "FAIL") << " ("
              << TablePrinter::num(100.0 * (li_lu - li_cg_best) / li_lu, 1)
              << "% better); LSI(CG) faster than LSI(QR) "
              << (lsi_wins ? "PASS" : "FAIL") << " ("
              << TablePrinter::num(100.0 * (lsi_qr - lsi_cg_best) / lsi_qr, 1)
              << "% better)\n";
  }
  std::cout << "\n";
  table.print(std::cout);

  std::cout << "\nCSV:\n";
  CsvWriter csv(std::cout, {"solver", "scheme", "tolerance", "time_ratio",
                            "t_const_us"});
  for (const auto& p : points) {
    csv.add_row({p.solver, p.scheme, TablePrinter::num(p.tol, 10),
                 TablePrinter::num(p.time_ratio, 4),
                 TablePrinter::num(p.t_const_us, 2)});
  }

  return all_pass ? 0 : 1;
}
