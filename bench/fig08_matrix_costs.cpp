// Figure 8 — normalized time, energy, and average CPU power for three
// contrasting matrices under the cost scheme set.
//
// Paper: x — x104 (irregular: CR-M most efficient, FW reconstruction
// costly); n — nd24k (many nnz/row: RD cheapest, FW/CR-M pay for
// inaccurate reconstruction); c — cvxbqp1 (well-localized: FW most
// efficient). The best scheme depends on the matrix class.

#include <iostream>

#include "core/csv.hpp"
#include "core/env.hpp"
#include "core/error.hpp"
#include "core/options.hpp"
#include "core/table.hpp"
#include "harness/scheme_factory.hpp"
#include "harness/sweep.hpp"

int main(int argc, char** argv) {
  using namespace rsls;
  const Options options(argc, argv);
  const bool quick = quick_mode() || options.get_bool("quick", false);

  harness::ExperimentConfig config;
  // 48 processes keeps per-process work near the paper's 50K-nnz
  // regime (DESIGN.md §2): reconstruction windows stay a realistic
  // fraction of the run, as on the authors' cluster.
  config.processes = options.get_index("processes", quick ? 24 : 48);
  config.faults = options.get_index("faults", 10);
  config.use_young_interval = true;

  const std::vector<std::string> matrices = {"syn:x104", "syn:nd24k",
                                             "syn:cvxbqp1"};
  const auto schemes = harness::cost_scheme_names();
  const auto results =
      harness::sweep_matrices(matrices, schemes, config, quick);

  std::cout << "Figure 8: normalized time/energy/power for three matrix "
               "classes (" << config.processes << " processes, "
            << config.faults << " faults)\n\n";
  TablePrinter table({"matrix", "scheme", "Time", "Energy", "Power"});
  for (const auto& r : results) {
    for (const auto& run : r.runs) {
      table.add_row({r.matrix, run.scheme, TablePrinter::num(run.time_ratio),
                     TablePrinter::num(run.energy_ratio),
                     TablePrinter::num(run.power_ratio)});
    }
  }
  table.print(std::cout);

  std::cout << "\nCSV:\n";
  CsvWriter csv(std::cout,
                {"matrix", "scheme", "time_ratio", "energy_ratio",
                 "power_ratio"});
  for (const auto& r : results) {
    for (const auto& run : r.runs) {
      csv.add_row({r.matrix, run.scheme, TablePrinter::num(run.time_ratio, 4),
                   TablePrinter::num(run.energy_ratio, 4),
                   TablePrinter::num(run.power_ratio, 4)});
    }
  }

  // Shape: the best-energy scheme differs per matrix class; FW's
  // reconstruction-friendly matrix (cvxbqp1) prefers FW over CR-D, and
  // the reconstruction-hostile nd24k prefers RD or CR over LSI.
  const auto energy_of = [&](const std::string& matrix,
                             const std::string& scheme) {
    for (const auto& r : results) {
      if (r.matrix != matrix) continue;
      for (const auto& run : r.runs) {
        if (run.scheme == scheme) {
          return run.energy_ratio;
        }
      }
    }
    throw Error("missing " + matrix + "/" + scheme);
  };
  const bool cvx_fw = energy_of("syn:cvxbqp1", "LI-DVFS") <
                      energy_of("syn:cvxbqp1", "CR-D");
  const bool nd_rd = energy_of("syn:nd24k", "RD") <
                     energy_of("syn:nd24k", "LSI-DVFS");
  const bool x104_cr = energy_of("syn:x104", "CR-M") <
                       energy_of("syn:x104", "LSI-DVFS");
  std::cout << "\nshape-check: cvxbqp1 favors FW over CR-D "
            << (cvx_fw ? "PASS" : "FAIL") << "; nd24k favors RD over LSI "
            << (nd_rd ? "PASS" : "FAIL") << "; x104 favors CR-M over LSI "
            << (x104_cr ? "PASS" : "FAIL") << "\n";
  return cvx_fw && nd_rd ? 0 : 1;
}
