// Ablation — power budgets: the paper's §2.3 motivation is that the
// power a resilience scheme draws competes with computation under a
// machine-wide power cap ("the additional power required to provide
// resilience reduces the power available for computation"). Using the §6
// projection, this ablation reports which schemes fit under a given cap
// (relative to the fault-free power draw) at each system size, and the
// most energy-efficient feasible choice — redundancy is the first
// casualty of a tight budget.

#include <iostream>
#include <vector>

#include "core/csv.hpp"
#include "core/table.hpp"
#include "model/projection.hpp"

int main() {
  using namespace rsls;

  model::ProjectionInputs inputs;
  const IndexVec counts = {4096, 65536, 1048576};
  const std::vector<double> caps = {1.05, 1.5, 2.5};
  const auto points = model::project(inputs, counts);

  std::cout << "Ablation: feasible schemes under a power cap (ratio of the "
               "fault-free draw), from the Fig. 9 projection\n\n";
  TablePrinter table({"procs", "cap x", "RD", "CR-D", "CR-M", "FW",
                      "best feasible (energy)"});
  std::vector<std::vector<std::string>> csv_rows;
  bool rd_needs_budget = true;
  bool always_something_feasible = true;

  for (const auto& point : points) {
    for (const double cap : caps) {
      const struct {
        const char* name;
        const model::SchemeCosts* costs;
      } schemes[] = {{"RD", &point.rd},
                     {"CR-D", &point.cr_disk},
                     {"CR-M", &point.cr_memory},
                     {"FW", &point.fw}};
      std::vector<std::string> row = {std::to_string(point.processes),
                                      TablePrinter::num(cap)};
      const char* best = "-";
      double best_energy = 0.0;
      for (const auto& s : schemes) {
        const bool feasible = !s.costs->halted && s.costs->power_ratio <= cap;
        row.push_back(feasible ? "yes" : "no");
        if (feasible &&
            (best[0] == '-' || s.costs->energy_ratio < best_energy)) {
          best = s.name;
          best_energy = s.costs->energy_ratio;
        }
        if (s.name[0] == 'R' && cap < 2.0 && feasible) {
          rd_needs_budget = false;  // RD fit under a sub-2x cap: wrong
        }
      }
      always_something_feasible =
          always_something_feasible && best[0] != '-';
      row.push_back(best);
      table.add_row(row);
      csv_rows.push_back(row);
    }
  }
  table.print(std::cout);

  std::cout << "\nCSV:\n";
  CsvWriter csv(std::cout, {"procs", "cap", "rd", "crd", "crm", "fw",
                            "best"});
  for (const auto& row : csv_rows) {
    csv.add_row(row);
  }

  std::cout << "\nshape-check: RD infeasible under sub-2x caps "
            << (rd_needs_budget ? "PASS" : "FAIL")
            << "; a feasible scheme exists at every point "
            << (always_something_feasible ? "PASS" : "FAIL") << "\n";
  return rd_needs_budget && always_something_feasible ? 0 : 1;
}
