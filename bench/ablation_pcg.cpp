// Ablation — solver variant × preconditioner × recovery scheme, priced
// on two interconnects (DESIGN.md §16): classic CG against the
// Chronopoulos/Gear-style pipelined PCG, under the preconditioner
// roster, on the flat seed network and the fat tree.
//
// Expected shape: the pipelined variant fuses its two recurrence dot
// products into one non-blocking allreduce overlapped with SpMV + the
// preconditioner apply, so it hides reduction time the classic variant
// exposes in full — classic runs show zero hidden allreduce seconds,
// pipelined runs show some, and the *exposed* allreduce time drops when
// switching classic → pipelined. That drop is bigger on the fat tree,
// where every allreduce pays more hops, than on the flat network — the
// whole point of communication hiding. Orthogonally, the non-identity
// preconditioners cut iterations-to-solution on the diagonally-scaled
// fixture, and every recovery scheme still converges through injected
// process losses under the pipelined variant (recovery has to rebuild
// preconditioner and pipeline state, not just x).
//
// Besides the console tables, writes the standardized BENCH JSON
// artifact to BENCH_pcg.json (override with RSLS_BENCH_JSON).

#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "core/csv.hpp"
#include "core/env.hpp"
#include "core/options.hpp"
#include "core/table.hpp"
#include "core/version.hpp"
#include "harness/runner.hpp"
#include "obs/json.hpp"
#include "resilience/resilient_solve.hpp"
#include "simrt/cluster.hpp"
#include "sparse/generators.hpp"

namespace {

using namespace rsls;

struct PcgCell {
  std::string topology;
  std::string variant;
  std::string precond;
  std::string scheme;
  Index iterations = 0;
  Seconds time = 0.0;
  Joules energy = 0.0;
  Index recoveries = 0;
  std::string status;
  Seconds exposed_s = 0.0;  // allreduce wait the critical path sees
  Seconds hidden_s = 0.0;   // allreduce time overlapped with local work
  /// Energy attributable to exposed allreduce waits: exposed seconds
  /// priced at the run's average system power. This is the figure the
  /// pipelined variant is supposed to shrink.
  Joules exposed_energy_j = 0.0;
};

double counter_value(const obs::MetricsSnapshot& metrics,
                     const std::string& name) {
  for (const auto& [key, value] : metrics.counters) {
    if (key == name) {
      return value;
    }
  }
  return 0.0;
}

PcgCell to_cell(const std::string& topology, const std::string& variant,
                const std::string& precond, const harness::SchemeRun& run) {
  PcgCell cell;
  cell.topology = topology;
  cell.variant = variant;
  cell.precond = precond;
  cell.scheme = run.scheme;
  cell.iterations = run.report.cg.iterations;
  cell.time = run.report.time;
  cell.energy = run.report.energy;
  cell.recoveries = run.report.recoveries;
  cell.status = resilience::to_string(run.report.status);
  cell.exposed_s = counter_value(run.metrics, "comm.allreduce_exposed_s");
  cell.hidden_s = counter_value(run.metrics, "comm.allreduce_hidden_s");
  cell.exposed_energy_j = cell.exposed_s * run.report.average_power;
  return cell;
}

void write_bench_json(const std::vector<PcgCell>& cells) {
  const std::string path = env::bench_json_path().value_or("BENCH_pcg.json");
  std::ofstream os(path);
  if (!os.good()) {
    std::fprintf(stderr, "ablation_pcg: cannot open %s for writing\n",
                 path.c_str());
    return;
  }
  obs::JsonWriter json(os);
  json.begin_object();
  json.field("schema_version", 1);
  json.field("source", "ablation_pcg");
  json.field("git_describe", build::git_describe());
  json.begin_array("results");
  for (const auto& c : cells) {
    json.begin_object();
    json.field("name",
               c.topology + "/" + c.variant + "/" + c.precond + "/" + c.scheme);
    json.field("topology", c.topology);
    json.field("solver", c.variant);
    json.field("preconditioner", c.precond);
    json.field("scheme", c.scheme);
    json.field("status", c.status);
    json.begin_object("counters");
    json.field("iterations", static_cast<std::int64_t>(c.iterations));
    json.field("elapsed_s", c.time);
    json.field("energy_j", c.energy);
    json.field("recoveries", static_cast<std::int64_t>(c.recoveries));
    json.field("allreduce_exposed_s", c.exposed_s);
    json.field("allreduce_hidden_s", c.hidden_s);
    json.field("allreduce_exposed_energy_j", c.exposed_energy_j);
    json.end_object();
    json.end_object();
  }
  json.end_array();
  json.end_object();
  os << '\n';
  std::fprintf(stderr, "ablation_pcg: wrote %zu results to %s\n", cells.size(),
               path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  const Options options(argc, argv);
  const bool quick = quick_mode() || options.get_bool("quick", false);

  const Index processes = options.get_index("p", quick ? 16 : 48);
  const Index faults = options.get_index("faults", 2);

  // Diagonally-scaled band: the two-decade multiplicative spread is what
  // gives Jacobi-type preconditioners their iteration win over identity.
  sparse::BandedSpdConfig matrix_config;
  matrix_config.n = processes * 128;
  matrix_config.half_bandwidth = 6;
  matrix_config.fill = 1.0;
  matrix_config.diag_excess = 0.02;
  matrix_config.scale_decades = 2.0;
  matrix_config.seed = 901;

  const std::vector<std::string> topologies = {"flat", "fat-tree"};
  const std::vector<std::string> variants = {"cg", "pipelined-cg"};
  std::vector<std::string> preconds = {"identity", "jacobi", "ic0"};
  if (!quick) {
    preconds.push_back("block-jacobi");
  }
  // F0 (with its faults zeroed below) is the clean fault-free probe the
  // exposure shape checks read; ESR and LI make recovery rebuild parity
  // and preconditioner/pipeline state mid-solve.
  const std::vector<std::string> schemes = {"F0", "ESR", "LI"};

  std::cout << "Ablation: solver variant x preconditioner x scheme ("
            << processes << " processes, n = " << matrix_config.n
            << ", flat vs fat-tree)\n\n";

  std::vector<harness::GroupSpec> groups;
  for (const auto& topo : topologies) {
    for (const auto& variant : variants) {
      for (const auto& precond : preconds) {
        harness::GroupSpec group;
        group.label = topo + "/" + variant + "/" + precond;
        group.config.processes = processes;
        group.config.faults = faults;
        group.config.tolerance = 1e-10;
        group.config.solver = variant;
        group.config.preconditioner = precond;
        group.config.observability.enabled = true;  // comm counters
        simrt::net::NetworkConfig net;
        net.topology = topo == "flat" ? simrt::net::TopologyKind::kFlat
                                      : simrt::net::TopologyKind::kFatTree;
        group.config.network = net;
        group.make_workload = [matrix_config, processes] {
          return harness::Workload::create(sparse::banded_spd(matrix_config),
                                           processes);
        };
        for (const auto& scheme : schemes) {
          harness::CellSpec cell{scheme, std::nullopt, nullptr};
          if (scheme == "F0") {
            auto clean = group.config;
            clean.faults = 0;
            cell.config = std::move(clean);
          }
          group.cells.push_back(std::move(cell));
        }
        groups.push_back(std::move(group));
      }
    }
  }

  harness::Runner runner;
  const auto results = runner.run(groups);

  std::vector<PcgCell> cells;
  for (std::size_t g = 0; g < results.size(); ++g) {
    const auto& topo = groups[g].config.network->topology;
    const std::string topo_name = simrt::net::to_string(topo);
    for (const auto& run : results[g].runs) {
      cells.push_back(to_cell(topo_name, groups[g].config.solver,
                              groups[g].config.preconditioner, run));
    }
  }

  TablePrinter table({"topology", "solver", "precond", "scheme", "iters",
                      "time (ms)", "energy (J)", "exposed (ms)", "hidden (ms)",
                      "recov"});
  for (const auto& c : cells) {
    table.add_row({c.topology, c.variant, c.precond, c.scheme,
                   std::to_string(c.iterations),
                   TablePrinter::num(c.time * 1e3, 2),
                   TablePrinter::num(c.energy, 2),
                   TablePrinter::num(c.exposed_s * 1e3, 3),
                   TablePrinter::num(c.hidden_s * 1e3, 3),
                   std::to_string(c.recoveries)});
  }
  table.print(std::cout);

  std::cout << "\nCSV:\n";
  CsvWriter csv(std::cout,
                {"topology", "solver", "preconditioner", "scheme", "iterations",
                 "time_ms", "energy_j", "allreduce_exposed_ms",
                 "allreduce_hidden_ms", "exposed_energy_j", "recoveries",
                 "status"});
  for (const auto& c : cells) {
    csv.add_row({c.topology, c.variant, c.precond, c.scheme,
                 std::to_string(c.iterations),
                 TablePrinter::num(c.time * 1e3, 4),
                 TablePrinter::num(c.energy, 4),
                 TablePrinter::num(c.exposed_s * 1e3, 4),
                 TablePrinter::num(c.hidden_s * 1e3, 4),
                 TablePrinter::num(c.exposed_energy_j, 4),
                 std::to_string(c.recoveries), c.status});
  }

  const auto find_cell = [&](const std::string& topo,
                             const std::string& variant,
                             const std::string& precond,
                             const std::string& scheme) -> const PcgCell& {
    for (const auto& c : cells) {
      if (c.topology == topo && c.variant == variant && c.precond == precond &&
          c.scheme == scheme) {
        return c;
      }
    }
    throw Error("ablation_pcg: missing cell " + topo + "/" + variant + "/" +
                precond + "/" + scheme);
  };

  // 1. Blocking allreduces expose everything; the pipelined fused
  //    reduction overlaps with SpMV + preconditioner apply.
  const PcgCell& flat_cg = find_cell("flat", "cg", "identity", "F0");
  const PcgCell& flat_pcg = find_cell("flat", "pipelined-cg", "identity", "F0");
  const PcgCell& fat_cg = find_cell("fat-tree", "cg", "identity", "F0");
  const PcgCell& fat_pcg =
      find_cell("fat-tree", "pipelined-cg", "identity", "F0");
  const bool hiding = flat_cg.hidden_s == 0.0 && fat_cg.hidden_s == 0.0 &&
                      flat_pcg.hidden_s > 0.0 && fat_pcg.hidden_s > 0.0;

  // 2. The exposure drop classic → pipelined is positive on both
  //    networks and larger on the fat tree, where reductions pay more
  //    hops; the exposed-allreduce *energy* drops with it.
  const Seconds flat_drop = flat_cg.exposed_s - flat_pcg.exposed_s;
  const Seconds fat_drop = fat_cg.exposed_s - fat_pcg.exposed_s;
  const bool exposure_drop = flat_drop > 0.0 && fat_drop > flat_drop;
  const bool energy_drop = fat_pcg.exposed_energy_j < fat_cg.exposed_energy_j;

  // 3. Real preconditioners buy iterations on the two-decade fixture.
  bool precond_wins = true;
  for (const auto& topo : topologies) {
    const Index base = find_cell(topo, "cg", "identity", "F0").iterations;
    for (const auto& precond : preconds) {
      if (precond == "identity") {
        continue;
      }
      for (const auto& variant : variants) {
        if (find_cell(topo, variant, precond, "F0").iterations >= base) {
          precond_wins = false;
        }
      }
    }
  }

  // 4. Every faulted cell converged and actually recovered — under the
  //    pipelined variant that means preconditioner + pipeline state were
  //    rebuilt mid-solve, not just x.
  bool recovery_holds = true;
  for (const auto& c : cells) {
    if (c.status != "converged") {
      recovery_holds = false;
    }
    if (c.scheme != "F0" && c.recoveries < faults) {
      recovery_holds = false;
    }
  }

  std::cout << "\nshape-check: pipelined hides allreduce time, classic "
               "exposes all of it "
            << (hiding ? "PASS" : "FAIL")
            << "; exposed-allreduce drop positive and larger on fat-tree ("
            << TablePrinter::num(flat_drop * 1e3, 3) << " ms flat vs "
            << TablePrinter::num(fat_drop * 1e3, 3) << " ms fat-tree) "
            << (exposure_drop ? "PASS" : "FAIL")
            << "; fat-tree exposed-allreduce energy lower under pipelined "
            << (energy_drop ? "PASS" : "FAIL")
            << "; preconditioners cut iterations vs identity "
            << (precond_wins ? "PASS" : "FAIL")
            << "; all schemes converge and recover under both variants "
            << (recovery_holds ? "PASS" : "FAIL") << "\n";

  write_bench_json(cells);

  return hiding && exposure_drop && energy_drop && precond_wins &&
                 recovery_holds
             ? 0
             : 1;
}
