// Load generator for the solve daemon (DESIGN.md §15): N concurrent
// clients fire open-loop arrivals at an in-process SolveServer over real
// loopback sockets and measure end-to-end job latency (p50/p95/p99),
// throughput, rejection rate, and artifact-cache hit rate.
//
// Open loop: each client submits on its own fixed schedule whether or
// not earlier jobs finished, so the queue genuinely backs up — the
// closed-loop alternative would never exercise admission control. The
// job mix cycles a small set of distinct problems, so repeats after the
// first round are cache hits.
//
// The wall-clock latencies vary with host load; the BENCH_serve.json
// gate uses generous tolerances on those and tight ones on the
// deterministic counters (accepted/completed/cache hits, rejection
// behavior under a deterministically full queue).
//
//   --clients=N   concurrent client threads        (default 64)
//   --jobs=N      submissions per client           (default 3)
//   --workers=N   engine solver workers            (default 4)
//   --quick       shrink the matrices (also RSLS_QUICK=1)

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/env.hpp"
#include "core/options.hpp"
#include "core/table.hpp"
#include "core/version.hpp"
#include "obs/json.hpp"
#include "serve/client.hpp"
#include "serve/server.hpp"

namespace {

using namespace rsls;

double percentile(std::vector<double> sorted, double p) {
  if (sorted.empty()) {
    return 0.0;
  }
  std::sort(sorted.begin(), sorted.end());
  const double rank = p * static_cast<double>(sorted.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

}  // namespace

int main(int argc, char** argv) {
  const Options options(argc, argv);
  const bool quick = quick_mode() || options.get_bool("quick", false);
  const Index clients = options.get_index("clients", 64);
  const Index jobs_per_client = options.get_index("jobs", 3);
  const Index workers = options.get_index("workers", 4);
  const Index n = quick ? 192 : 768;

  serve::JobEngine::Options engine_options;
  engine_options.workers = workers;
  engine_options.queue_depth = static_cast<Index>(clients) * jobs_per_client;
  serve::SolveServer server(0, engine_options);
  std::thread accept_thread([&server] { server.serve_forever(); });
  const serve::Client probe(server.port());

  // Job mix: 4 distinct problems cycled across all submissions, so
  // everything past the first 4 baselines is a cache hit.
  const std::vector<std::string> specs = {
      "{\"matrix\":\"laplacian_1d\",\"n\":" + std::to_string(n) +
          ",\"faults\":2,\"processes\":16}",
      "{\"matrix\":\"laplacian_1d\",\"n\":" + std::to_string(n) +
          ",\"faults\":4,\"processes\":16}",  // same baseline key
      "{\"matrix\":\"laplacian_2d\",\"n\":" + std::to_string(quick ? 14 : 28) +
          ",\"faults\":2,\"processes\":16}",
      "{\"matrix\":\"banded\",\"n\":" + std::to_string(n) +
          ",\"faults\":2,\"processes\":16}",
  };

  // --- open-loop load phase -------------------------------------------
  std::atomic<std::uint64_t> accepted{0};
  std::atomic<std::uint64_t> rejected{0};
  std::mutex latencies_mutex;
  std::vector<double> latencies;  // seconds, accepted jobs only

  const auto wall_start = std::chrono::steady_clock::now();
  std::vector<std::thread> client_threads;
  client_threads.reserve(static_cast<std::size_t>(clients));
  for (Index c = 0; c < clients; ++c) {
    client_threads.emplace_back([&, c] {
      const serve::Client client(server.port());
      for (Index j = 0; j < jobs_per_client; ++j) {
        // Open-loop arrival: fixed 2 ms inter-arrival per client,
        // independent of completions.
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
        const std::string& spec =
            specs[static_cast<std::size_t>(c * jobs_per_client + j) %
                  specs.size()];
        const auto t0 = std::chrono::steady_clock::now();
        const serve::ClientResponse response =
            client.request("POST", "/v1/jobs", spec);
        if (response.status != 202) {
          ++rejected;
          continue;
        }
        ++accepted;
        const std::string id =
            obs::parse_json(response.body).at("id").as_string();
        client.wait(id);
        const double seconds =
            std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                          t0)
                .count();
        const std::lock_guard<std::mutex> lock(latencies_mutex);
        latencies.push_back(seconds);
      }
    });
  }
  for (std::thread& t : client_threads) {
    t.join();
  }
  const double wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    wall_start)
          .count();

  // --- deterministic overload probe -----------------------------------
  // Pause dispatch, shrink admission to what is already queued plus a
  // known headroom, and count structured rejections: the outcome depends
  // only on the queue bound, never on scheduling.
  serve::JobEngine& engine = server.engine();
  engine.pause();
  std::uint64_t probe_accepted = 0;
  std::uint64_t probe_rejected = 0;
  std::vector<std::string> probe_ids;
  for (Index i = 0; i < engine_options.queue_depth + 8; ++i) {
    const serve::ClientResponse response =
        probe.request("POST", "/v1/jobs", specs[0]);
    if (response.status == 202) {
      ++probe_accepted;
      probe_ids.push_back(obs::parse_json(response.body).at("id").as_string());
    } else if (response.status == 429) {
      ++probe_rejected;
    }
  }
  // Cancel the probe jobs while still queued (deterministic, instant) so
  // resume + shutdown don't solve a queue-depth's worth of filler.
  for (const std::string& id : probe_ids) {
    probe.cancel(id);
  }
  engine.resume();

  const obs::JsonValue metrics = probe.metrics();
  const auto counter = [&metrics](const std::string& name) {
    return metrics.at("counters").at(name).as_number();
  };
  const double cache_hits = counter("serve.cache.hits");
  const double cache_misses = counter("serve.cache.misses");
  const double events_streamed = counter("serve.events.recorded");

  // Drain the probe jobs, then stop the daemon.
  server.shutdown();
  accept_thread.join();

  const double total_jobs = static_cast<double>(accepted.load());
  const double jobs_per_second =
      wall_seconds > 0.0 ? total_jobs / wall_seconds : 0.0;
  const double p50 = percentile(latencies, 0.50);
  const double p95 = percentile(latencies, 0.95);
  const double p99 = percentile(latencies, 0.99);
  const double hit_rate = cache_hits + cache_misses > 0.0
                              ? cache_hits / (cache_hits + cache_misses)
                              : 0.0;

  TablePrinter table({"metric", "value"});
  table.add_row({"clients", std::to_string(clients)});
  table.add_row({"jobs/client", std::to_string(jobs_per_client)});
  table.add_row({"accepted", std::to_string(accepted.load())});
  table.add_row({"rejected (load)", std::to_string(rejected.load())});
  table.add_row({"probe accepted", std::to_string(probe_accepted)});
  table.add_row({"probe rejected", std::to_string(probe_rejected)});
  table.add_row({"jobs/s", TablePrinter::num(jobs_per_second)});
  table.add_row({"latency p50 (s)", TablePrinter::num(p50, 4)});
  table.add_row({"latency p95 (s)", TablePrinter::num(p95, 4)});
  table.add_row({"latency p99 (s)", TablePrinter::num(p99, 4)});
  table.add_row({"cache hit rate", TablePrinter::num(hit_rate)});
  table.print(std::cout);

  // Shape checks: every load-phase job must be accepted (the queue was
  // sized for the full offered load), repeats must hit the cache, the
  // overload probe must reject exactly the submissions past the bound,
  // and at least one progress event must have streamed.
  bool pass = accepted.load() == static_cast<std::uint64_t>(clients) *
                                     static_cast<std::uint64_t>(
                                         jobs_per_client);
  pass = pass && rejected.load() == 0;
  pass = pass && cache_hits >= 1.0;
  pass = pass && probe_rejected >= 8;
  pass = pass && events_streamed >= 1.0;
  std::printf("%s serve_throughput\n", pass ? "PASS" : "FAIL");

  const std::string path =
      env::bench_json_path().value_or("BENCH_serve.json");
  std::ofstream os(path);
  if (!os.good()) {
    std::fprintf(stderr, "serve_throughput: cannot open %s\n", path.c_str());
    return 1;
  }
  obs::JsonWriter json(os);
  json.begin_object();
  json.field("schema_version", 1);
  json.field("source", "serve_throughput");
  json.field("git_describe", build::git_describe());
  json.begin_array("results");
  json.begin_object();
  json.field("name", "serve/load");
  json.begin_object("counters");
  json.field("jobs_per_second", jobs_per_second);
  json.field("latency_p50_s", p50);
  json.field("latency_p95_s", p95);
  json.field("latency_p99_s", p99);
  json.field("accepted", static_cast<std::int64_t>(accepted.load()));
  json.field("rejected", static_cast<std::int64_t>(rejected.load()));
  json.field("cache_hits", cache_hits);
  json.field("cache_misses", cache_misses);
  json.field("cache_hit_rate", hit_rate);
  json.field("events_streamed", events_streamed);
  json.end_object();
  json.end_object();
  json.begin_object();
  json.field("name", "serve/overload_probe");
  json.begin_object("counters");
  json.field("probe_accepted", static_cast<std::int64_t>(probe_accepted));
  json.field("probe_rejected", static_cast<std::int64_t>(probe_rejected));
  json.end_object();
  json.end_object();
  json.end_array();
  json.end_object();
  os << '\n';
  std::fprintf(stderr, "serve_throughput: wrote %s\n", path.c_str());
  return pass ? 0 : 1;
}
