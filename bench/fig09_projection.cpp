// Figure 9 — projected normalized resilience overhead under weak scaling
// (50 K nnz per process) with a decreasing system MTBF (constant
// per-processor MTBF of 6 K hours), for RD, CR-D, CR-M, the best FW and
// the ABFT/ESR family.
//
// Expected shape: RD flat at the fault-free levels (2× power); FW's
// T_res/E_res grow roughly linearly (t_const grows, t_lost per fault
// fixed); CR-D grows fastest (t_C linear in N and checkpointing more
// frequent) and eventually dominates; CR-M stays smallest; average power
// of FW and CR-D drops as recovery time dominates. ESR sits between RD
// and FW: no extra iterations and no replica power, only the (log-depth)
// encode bandwidth and the small decode term, so its overhead grows
// slowly and stays below FW throughout.

#include <iostream>

#include "core/csv.hpp"
#include "core/table.hpp"
#include "model/projection.hpp"

int main() {
  using namespace rsls;

  model::ProjectionInputs inputs;  // documented defaults (paper §6 regime)
  const IndexVec counts = model::default_process_counts();
  const auto points = model::project(inputs, counts);

  std::cout << "Figure 9: projected resilience overhead, weak scaling at "
               "50K nnz/process, per-processor MTBF 6K hours\n\n";
  TablePrinter table({"procs", "MTBF (h)", "T_base (s)",
                      "RD T_res", "CR-D T_res", "CR-M T_res", "FW T_res",
                      "ESR T_res", "RD E_res", "CR-D E_res", "CR-M E_res",
                      "FW E_res", "ESR E_res", "CR-D P", "CR-M P", "FW P",
                      "ESR P"});
  for (const auto& p : points) {
    table.add_row({std::to_string(p.processes),
                   TablePrinter::num(p.system_mtbf / 3600.0, 2),
                   TablePrinter::num(p.t_base, 1),
                   TablePrinter::num(p.rd.t_res_ratio),
                   TablePrinter::num(p.cr_disk.t_res_ratio),
                   TablePrinter::num(p.cr_memory.t_res_ratio),
                   TablePrinter::num(p.fw.t_res_ratio),
                   TablePrinter::num(p.esr.t_res_ratio),
                   TablePrinter::num(p.rd.e_res_ratio),
                   TablePrinter::num(p.cr_disk.e_res_ratio),
                   TablePrinter::num(p.cr_memory.e_res_ratio),
                   TablePrinter::num(p.fw.e_res_ratio),
                   TablePrinter::num(p.esr.e_res_ratio),
                   TablePrinter::num(p.cr_disk.power_ratio),
                   TablePrinter::num(p.cr_memory.power_ratio),
                   TablePrinter::num(p.fw.power_ratio),
                   TablePrinter::num(p.esr.power_ratio)});
  }
  table.print(std::cout);

  std::cout << "\nCSV:\n";
  CsvWriter csv(std::cout,
                {"procs", "mtbf_h", "scheme", "t_res_ratio", "e_res_ratio",
                 "power_ratio"});
  for (const auto& p : points) {
    const auto emit = [&](const char* name, const model::SchemeCosts& c) {
      csv.add_row({std::to_string(p.processes),
                   TablePrinter::num(p.system_mtbf / 3600.0, 4), name,
                   TablePrinter::num(c.t_res_ratio, 4),
                   TablePrinter::num(c.e_res_ratio, 4),
                   TablePrinter::num(c.power_ratio, 4)});
    };
    emit("RD", p.rd);
    emit("CR-D", p.cr_disk);
    emit("CR-M", p.cr_memory);
    emit("FW", p.fw);
    emit("ESR", p.esr);
  }

  // Shape checks (DESIGN.md §4).
  const auto& first = points.front();
  const auto& last = points.back();
  const bool rd_flat = first.rd.t_res_ratio == 0.0 && last.rd.t_res_ratio == 0.0;
  const bool fw_grows = last.fw.t_res_ratio > first.fw.t_res_ratio;
  const bool crd_grows_fastest =
      (last.cr_disk.t_res_ratio - first.cr_disk.t_res_ratio) >
      (last.fw.t_res_ratio - first.fw.t_res_ratio);
  const bool crm_smallest_at_scale =
      last.cr_memory.t_res_ratio < last.fw.t_res_ratio &&
      last.cr_memory.t_res_ratio < last.cr_disk.t_res_ratio;
  const bool crd_dominates = last.cr_disk.t_res_ratio > 1.0;
  const bool power_drops =
      last.cr_disk.power_ratio < first.cr_disk.power_ratio &&
      last.fw.power_ratio < first.fw.power_ratio;
  const bool esr_grows_slowly =
      last.esr.t_res_ratio > first.esr.t_res_ratio &&
      last.esr.t_res_ratio < last.fw.t_res_ratio;
  const bool esr_beats_rd_energy = last.esr.e_res_ratio < last.rd.e_res_ratio;
  std::cout << "\nshape-check: RD flat " << (rd_flat ? "PASS" : "FAIL")
            << "; FW grows " << (fw_grows ? "PASS" : "FAIL")
            << "; CR-D fastest growth " << (crd_grows_fastest ? "PASS" : "FAIL")
            << "; CR-M best at 1M " << (crm_smallest_at_scale ? "PASS" : "FAIL")
            << "; CR-D overhead dominates FF " << (crd_dominates ? "PASS" : "FAIL")
            << "; FW/CR-D power drops " << (power_drops ? "PASS" : "FAIL")
            << "; ESR grows slowly, below FW "
            << (esr_grows_slowly ? "PASS" : "FAIL")
            << "; ESR beats RD energy " << (esr_beats_rd_energy ? "PASS" : "FAIL")
            << "\n";

  // Analytic topology-aware T_O (DESIGN.md §12): the same per-iteration
  // overhead priced on candidate target interconnects via simrt::net,
  // next to the fitted table the projection extrapolates from the 8-node
  // cluster. The flat column is the α–β lower bound; fat tree and torus
  // add hop latency and bisection contention that the fitted table
  // cannot see.
  std::cout << "\nAnalytic T_O per iteration (µs), fitted table vs "
               "simrt::net topologies:\n";
  const auto make_model = [](simrt::net::TopologyKind kind) {
    model::TopologyCommInputs in;
    in.net.topology = kind;
    return model::TopologyCommModel(in);
  };
  const model::TopologyCommModel flat = make_model(
      simrt::net::TopologyKind::kFlat);
  const model::TopologyCommModel fat_tree =
      make_model(simrt::net::TopologyKind::kFatTree);
  const model::TopologyCommModel torus =
      make_model(simrt::net::TopologyKind::kTorus3D);
  TablePrinter comm_table({"procs", "fitted", "flat", "fat-tree", "torus3d"});
  const auto us = [](Seconds s) { return TablePrinter::num(s * 1e6, 3); };
  for (const Index n : counts) {
    comm_table.add_row({std::to_string(n),
                        us(inputs.comm.cg_iteration_overhead(n)),
                        us(flat.cg_iteration_overhead(n)),
                        us(fat_tree.cg_iteration_overhead(n)),
                        us(torus.cg_iteration_overhead(n))});
  }
  comm_table.print(std::cout);
  const Index n_max = counts.back();
  const bool analytic_ordered =
      flat.cg_iteration_overhead(n_max) < fat_tree.cg_iteration_overhead(n_max) &&
      flat.cg_iteration_overhead(n_max) < torus.cg_iteration_overhead(n_max);

  // The solver-variant axis (DESIGN.md Â§16): the same projection with
  // pipelined PCG's communication hiding — the fused single allreduce
  // overlaps with the SpMV, so half the exposed reduction latency
  // drops out of T_base. The resilience-overhead *ratios* then rise
  // slightly (a faster base run amortizes less), which is exactly the
  // effect the figure should surface at the 1 M-process end.
  model::ProjectionInputs pipelined_inputs = inputs;
  pipelined_inputs.comm_hiding = 0.5;
  const auto pipelined = model::project(pipelined_inputs, counts);
  std::cout << "\nSolver-variant axis (classic vs pipelined PCG):\n";
  TablePrinter variant_table({"procs", "T_base cg (s)", "T_base pipe (s)",
                              "FW T_res cg", "FW T_res pipe", "CR-D T_res cg",
                              "CR-D T_res pipe"});
  for (std::size_t i = 0; i < points.size(); ++i) {
    variant_table.add_row(
        {std::to_string(points[i].processes),
         TablePrinter::num(points[i].t_base, 1),
         TablePrinter::num(pipelined[i].t_base, 1),
         TablePrinter::num(points[i].fw.t_res_ratio),
         TablePrinter::num(pipelined[i].fw.t_res_ratio),
         TablePrinter::num(points[i].cr_disk.t_res_ratio),
         TablePrinter::num(pipelined[i].cr_disk.t_res_ratio)});
  }
  variant_table.print(std::cout);
  bool pipe_faster_base = true;
  for (std::size_t i = 0; i < points.size(); ++i) {
    pipe_faster_base =
        pipe_faster_base && pipelined[i].t_base <= points[i].t_base;
  }
  // Communication hiding matters more the bigger the machine: the
  // absolute T_base gap must grow monotonically-in-aggregate across
  // the sweep.
  const bool pipe_gap_grows =
      (points.back().t_base - pipelined.back().t_base) >
      (points.front().t_base - pipelined.front().t_base);
  std::cout << "shape-check: pipelined T_base <= classic everywhere "
            << (pipe_faster_base ? "PASS" : "FAIL")
            << "; hiding gap grows with N "
            << (pipe_gap_grows ? "PASS" : "FAIL") << "\n";
  std::cout << "shape-check: flat is the analytic lower bound "
            << (analytic_ordered ? "PASS" : "FAIL") << "\n";

  return rd_flat && fw_grows && crd_grows_fastest && crm_smallest_at_scale &&
                 esr_grows_slowly && esr_beats_rd_energy && analytic_ordered &&
                 pipe_faster_base && pipe_gap_grows
             ? 0
             : 1;
}
