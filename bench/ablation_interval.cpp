// Ablation — checkpoint cadence: sweep the CR interval around Young's
// prediction and show the time cost is U-shaped with its minimum near the
// Young value (the §3.2/§5.3 design choice). Too-frequent checkpoints pay
// t_C; too-rare ones pay rollback recomputation.

#include <iostream>

#include "core/csv.hpp"
#include "core/env.hpp"
#include "core/options.hpp"
#include "core/table.hpp"
#include "harness/experiment.hpp"
#include "harness/scheme_factory.hpp"
#include "model/young_daly.hpp"
#include "resilience/checkpoint.hpp"
#include "resilience/fault.hpp"
#include "sparse/roster.hpp"

int main(int argc, char** argv) {
  using namespace rsls;
  const Options options(argc, argv);
  const bool quick = quick_mode() || options.get_bool("quick", false);

  harness::ExperimentConfig config;
  config.processes = options.get_index("processes", quick ? 24 : 48);
  config.faults = options.get_index("faults", 10);

  const auto& entry = sparse::roster_entry("crystm02");
  const auto workload =
      harness::Workload::create(entry.make(quick), config.processes);
  const auto ff = harness::run_fault_free(workload, config);

  // Young's prediction for the disk level at the §5.2 fault density.
  const Seconds mtbf =
      ff.time / static_cast<double>(config.faults + 1);
  const Seconds t_c = harness::estimate_checkpoint_seconds(
      workload, harness::machine_for(config.processes), /*to_disk=*/true);
  const Index young_iters = std::max<Index>(
      1, static_cast<Index>(model::young_interval(t_c, mtbf) /
                            ff.iteration_seconds));

  std::cout << "Ablation: CR-D cost vs checkpoint interval (" << entry.name
            << "); Young's formula predicts ~" << young_iters
            << " iterations\n\n";

  TablePrinter table({"interval (iters)", "time x", "energy x",
                      "checkpoints", "note"});
  std::vector<std::pair<Index, double>> sweep;
  const IndexVec intervals = {
      std::max<Index>(young_iters / 8, 1), std::max<Index>(young_iters / 3, 1),
      young_iters, young_iters * 3, young_iters * 8, young_iters * 24};
  for (const Index interval : intervals) {
    harness::ExperimentConfig run_config = config;
    run_config.scheme.cr_interval_iterations = interval;
    const auto run = harness::run_scheme(workload, "CR-D", run_config, ff);
    table.add_row({std::to_string(interval),
                   TablePrinter::num(run.time_ratio),
                   TablePrinter::num(run.energy_ratio),
                   std::to_string(run.checkpoints),
                   interval == young_iters ? "<- Young" : ""});
    sweep.emplace_back(interval, run.time_ratio);
  }
  table.print(std::cout);

  std::cout << "\nCSV:\n";
  CsvWriter csv(std::cout, {"interval_iters", "time_ratio"});
  for (const auto& [interval, time_ratio] : sweep) {
    csv.add_row({std::to_string(interval), TablePrinter::num(time_ratio, 4)});
  }

  // Shape: the extremes cost more than the Young-neighbourhood minimum.
  double young_cost = 0.0, best = 1e18;
  for (const auto& [interval, time_ratio] : sweep) {
    if (interval == young_iters) {
      young_cost = time_ratio;
    }
    best = std::min(best, time_ratio);
  }
  const bool young_near_optimal = young_cost <= best * 1.15;
  const bool extremes_worse = sweep.front().second > best * 1.05 &&
                              sweep.back().second > best * 1.05;
  std::cout << "\nshape-check: Young within 15% of the sweep optimum "
            << (young_near_optimal ? "PASS" : "FAIL")
            << "; extremes cost more " << (extremes_worse ? "PASS" : "FAIL")
            << "\n";
  return young_near_optimal && extremes_worse ? 0 : 1;
}
