// Ablation — solver generality: the paper evaluates plain CG but argues
// its results "are applicable to other iterative solvers" (§5.2). This
// ablation reruns the scheme comparison under Jacobi-preconditioned CG:
// absolute iteration counts drop, but the recovery-scheme ordering and
// the normalized overheads keep the same shape.

#include <iostream>

#include "core/csv.hpp"
#include "core/env.hpp"
#include "core/error.hpp"
#include "core/options.hpp"
#include "core/table.hpp"
#include "harness/experiment.hpp"
#include "harness/scheme_factory.hpp"
#include "sparse/roster.hpp"

int main(int argc, char** argv) {
  using namespace rsls;
  const Options options(argc, argv);
  const bool quick = quick_mode() || options.get_bool("quick", false);

  const std::string matrix = options.get_string("matrix", "x104");
  const auto& entry = sparse::roster_entry(matrix);
  const sparse::Csr a = entry.make(quick);

  std::cout << "Ablation: recovery schemes under CG vs Jacobi-PCG ("
            << entry.name << ")\n\n";
  TablePrinter table({"solver", "FF iters", "scheme", "iter x", "time x",
                      "energy x"});
  std::vector<std::vector<std::string>> csv_rows;

  struct Shape {
    double f0 = 0.0, li = 0.0, rd = 0.0;
  };
  Shape shapes[2];
  int shape_idx = 0;

  for (const std::string precond : {"identity", "jacobi"}) {
    harness::ExperimentConfig config;
    config.processes = options.get_index("processes", quick ? 24 : 48);
    config.faults = 10;
    config.preconditioner = precond;
    const char* solver_name = precond == "identity" ? "CG" : "Jacobi-PCG";

    const auto workload = harness::Workload::create(a, config.processes);
    const auto ff = harness::run_fault_free(workload, config);
    for (const std::string scheme : {"RD", "F0", "LI", "CR-D"}) {
      const auto run = harness::run_scheme(workload, scheme, config, ff);
      table.add_row({solver_name, std::to_string(ff.iterations), scheme,
                     TablePrinter::num(run.iteration_ratio),
                     TablePrinter::num(run.time_ratio),
                     TablePrinter::num(run.energy_ratio)});
      csv_rows.push_back({solver_name, scheme,
                          std::to_string(ff.iterations),
                          TablePrinter::num(run.iteration_ratio, 4),
                          TablePrinter::num(run.energy_ratio, 4)});
      if (scheme == "F0") shapes[shape_idx].f0 = run.iteration_ratio;
      if (scheme == "LI") shapes[shape_idx].li = run.iteration_ratio;
      if (scheme == "RD") shapes[shape_idx].rd = run.iteration_ratio;
    }
    ++shape_idx;
  }
  table.print(std::cout);

  std::cout << "\nCSV:\n";
  CsvWriter csv(std::cout,
                {"solver", "scheme", "ff_iters", "iter_ratio",
                 "energy_ratio"});
  for (const auto& row : csv_rows) {
    csv.add_row(row);
  }

  // Shape: the scheme ordering is solver-independent.
  bool ordering_stable = true;
  for (const auto& s : shapes) {
    ordering_stable = ordering_stable && s.rd <= s.li && s.li <= s.f0;
  }
  std::cout << "\nshape-check: RD <= LI <= F0 under both solvers "
            << (ordering_stable ? "PASS" : "FAIL") << "\n";
  return ordering_stable ? 0 : 1;
}
