// Table 3 — properties of the matrix roster.
//
// Paper: 14 SPD matrices from the SuiteSparse collection with their sizes,
// densities, problem kinds, and CG iteration counts at tolerance 1e-12.
// Here: the synthetic roster (DESIGN.md §2 substitution) with the
// generated properties measured, the fault-free iteration count solved
// for, and the paper's reported values alongside for comparison.

#include <iostream>

#include "core/csv.hpp"
#include "core/env.hpp"
#include "core/options.hpp"
#include "core/table.hpp"
#include "harness/experiment.hpp"
#include "sparse/matrix_stats.hpp"
#include "sparse/roster.hpp"

int main(int argc, char** argv) {
  using namespace rsls;
  const Options options(argc, argv);
  const bool quick = quick_mode() || options.get_bool("quick", false);
  const Index processes = options.get_index("processes", quick ? 48 : 192);

  std::cout << "Table 3: matrix roster properties (synthetic stand-ins; "
               "paper values in brackets)\n\n";
  TablePrinter table({"name", "rows", "nnz/row", "bandwidth", "kind",
                      "iters", "[paper rows]", "[paper nnz/row]",
                      "[paper iters]"});
  std::vector<std::vector<std::string>> csv_rows;

  harness::ExperimentConfig config;
  config.processes = processes;

  for (const auto& entry : sparse::roster()) {
    sparse::Csr a = entry.make(quick);
    const auto stats = sparse::compute_stats(a);
    const auto workload =
        harness::Workload::create(std::move(a), processes);
    const auto ff = harness::run_fault_free(workload, config);

    table.add_row({entry.name, std::to_string(stats.rows),
                   TablePrinter::num(stats.nnz_per_row, 1),
                   std::to_string(stats.bandwidth), entry.problem_kind,
                   std::to_string(ff.iterations),
                   std::to_string(entry.paper_rows),
                   std::to_string(entry.paper_nnz_per_row),
                   std::to_string(entry.paper_iters)});
    csv_rows.push_back({entry.name, std::to_string(stats.rows),
                        TablePrinter::num(stats.nnz_per_row, 2),
                        std::to_string(stats.bandwidth),
                        std::to_string(ff.iterations),
                        TablePrinter::num(ff.time, 6),
                        TablePrinter::num(ff.energy, 3)});
  }
  table.print(std::cout);

  std::cout << "\nCSV:\n";
  CsvWriter csv(std::cout, {"name", "rows", "nnz_per_row", "bandwidth",
                            "ff_iters", "ff_time_s", "ff_energy_j"});
  for (const auto& row : csv_rows) {
    csv.add_row(row);
  }
  return 0;
}
