// Fault-tolerant solve walkthrough: run CG under Poisson-arrival faults
// with a chosen recovery scheme, watch the residual history, and read the
// time/power/energy report — the full public API surface in one place.
//
//   ./build/examples/resilient_solve [--scheme=LI-DVFS] [--mtbf-ms=0.15]
//                                    [--processes=48] [--matrix=crystm02]

#include <cmath>
#include <iostream>

#include "core/options.hpp"
#include "core/table.hpp"
#include "harness/experiment.hpp"
#include "harness/scheme_factory.hpp"
#include "power/rapl.hpp"
#include "resilience/resilient_solve.hpp"
#include "sparse/roster.hpp"

int main(int argc, char** argv) {
  using namespace rsls;
  const Options options(argc, argv);
  const std::string scheme_name = options.get_string("scheme", "LI-DVFS");
  const std::string matrix_name = options.get_string("matrix", "crystm02");
  const Index processes = options.get_index("processes", 48);
  const double mtbf_ms = options.get_double("mtbf-ms", 0.15);

  // 1. Build the workload: a roster matrix, b = A·1, x0 = 0.
  const auto& entry = sparse::roster_entry(matrix_name);
  const auto workload =
      harness::Workload::create(entry.make(/*quick=*/true), processes);
  std::cout << "Workload: " << entry.name << " ("
            << workload.a.rows() << " rows, " << workload.a.global().nnz()
            << " nnz) on " << processes << " simulated ranks\n";

  // 2. Build the recovery scheme and a cluster sized for it (DMR needs a
  //    replica set).
  harness::SchemeFactoryConfig factory;
  const auto scheme = harness::make_scheme(scheme_name, factory, workload.x0);
  simrt::VirtualCluster cluster(harness::machine_for(processes), processes,
                                scheme->replica_factor());
  cluster.enable_event_log();  // opt-in phase timeline (Score-P-style)

  // 3. Poisson fault arrivals at rate 1/MTBF against the virtual clock.
  auto injector = resilience::FaultInjector::poisson(
      1.0 / (mtbf_ms * 1e-3), processes, /*seed=*/2024);

  // 4. Solve. The iteration budget is bounded: when the fault rate is
  //    high enough that recovery cannot outrun the faults, the solve
  //    stalls — the paper's §6 "workload progress can possibly halt"
  //    regime — and the example reports it instead of spinning.
  solver::CgOptions cg;
  cg.tolerance = 1e-12;
  cg.max_iterations = options.get_index("max-iterations", 20000);
  cg.record_residual_history = true;
  RealVec x = workload.x0;
  const auto report = resilience::resilient_solve(
      workload.a, cluster, workload.b, x, *scheme, injector, cg);

  // 5. Report.
  std::cout << "\nScheme " << scheme->name() << " with MTBF = " << mtbf_ms
            << " ms (virtual):\n";
  TablePrinter table({"metric", "value"});
  table.add_row({"converged", report.cg.converged ? "yes" : "no"});
  table.add_row({"iterations", std::to_string(report.cg.iterations)});
  table.add_row({"faults injected", std::to_string(report.faults)});
  table.add_row({"recoveries", std::to_string(report.recoveries)});
  table.add_row({"relative residual",
                 TablePrinter::num(std::log10(report.cg.relative_residual), 1) +
                     " (log10)"});
  table.add_row({"time-to-solution (ms)",
                 TablePrinter::num(report.time * 1e3, 3)});
  table.add_row({"energy-to-solution (J)",
                 TablePrinter::num(report.energy, 2)});
  table.add_row({"average power (W)",
                 TablePrinter::num(report.average_power, 1)});
  table.add_row(
      {"reconstruction energy (J)",
       TablePrinter::num(
           report.account.core_energy(power::PhaseTag::kReconstruct), 3)});
  table.print(std::cout);

  if (!report.cg.converged) {
    std::cout << "\nThe solver did NOT converge within "
              << cg.max_iterations
              << " iterations: at this MTBF the recovery schemes cannot "
                 "outrun the faults (the paper's 'progress halts' regime, "
                 "§6). Raise --mtbf-ms or pick a cheaper scheme.\n";
    return 1;
  }
  std::cout << "\nPhase time breakdown (summed across ranks):\n";
  {
    const auto& log = cluster.event_log();
    TablePrinter phases({"phase", "rank-seconds", "share %"});
    Seconds total = 0.0;
    for (std::size_t t = 0; t < power::kPhaseTagCount; ++t) {
      total += log.phase_time(static_cast<power::PhaseTag>(t));
    }
    for (std::size_t t = 0; t < power::kPhaseTagCount; ++t) {
      const auto tag = static_cast<power::PhaseTag>(t);
      const Seconds seconds = log.phase_time(tag);
      if (seconds > 0.0) {
        phases.add_row({power::to_string(tag),
                        TablePrinter::num(seconds, 5),
                        TablePrinter::num(100.0 * seconds / total, 1)});
      }
    }
    phases.print(std::cout);
  }

  std::cout << "\nResidual history (log10, every 50 iterations):\n  ";
  const auto& history = report.cg.residual_history;
  for (std::size_t i = 0; i < history.size(); i += 50) {
    std::cout << TablePrinter::num(std::log10(history[i]), 1) << " ";
  }
  std::cout << "\n(each fault shows up as a jump; the recovery scheme "
               "determines how large)\n";
  return report.cg.converged ? 0 : 1;
}
