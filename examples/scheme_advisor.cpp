// Scheme advisor: the paper's closing recommendation is that "resilience
// techniques should be adaptively adjusted to a given fault rate, system
// size, and power budget". This example does that adaptation: it measures
// a workload's per-scheme costs at small scale, then uses the §3 models
// to recommend the best scheme under a chosen objective.
//
//   ./build/examples/scheme_advisor [--matrix=nd24k] [--objective=energy]
//                                   [--faults=10] [--processes=48]
//   objectives: time | energy | power

#include <iostream>

#include "core/error.hpp"
#include "core/options.hpp"
#include "core/table.hpp"
#include "harness/experiment.hpp"
#include "harness/scheme_factory.hpp"
#include "sparse/matrix_stats.hpp"
#include "sparse/roster.hpp"

int main(int argc, char** argv) {
  using namespace rsls;
  const Options options(argc, argv);
  const std::string matrix_name = options.get_string("matrix", "nd24k");
  const std::string objective = options.get_string("objective", "energy");
  RSLS_CHECK_MSG(objective == "time" || objective == "energy" ||
                     objective == "power",
                 "objective must be time|energy|power");

  harness::ExperimentConfig config;
  config.processes = options.get_index("processes", 48);
  config.faults = options.get_index("faults", 10);
  config.use_young_interval = true;

  const auto& entry = sparse::roster_entry(matrix_name);
  sparse::Csr matrix = entry.make(/*quick=*/true);
  const auto stats = sparse::compute_stats(matrix);
  const double coupling =
      sparse::off_block_coupling(matrix, config.processes);

  std::cout << "Advising for " << entry.name << ": " << stats.rows
            << " rows, " << TablePrinter::num(stats.nnz_per_row, 1)
            << " nnz/row, off-block coupling "
            << TablePrinter::num(100.0 * coupling, 1) << "% at "
            << config.processes << " ranks\n\n";

  const auto workload =
      harness::Workload::create(std::move(matrix), config.processes);
  const auto ff = harness::run_fault_free(workload, config);

  TablePrinter table({"scheme", "time x", "energy x", "power x"});
  std::string best_scheme;
  double best_value = 0.0;
  for (const auto& name : harness::cost_scheme_names()) {
    const auto run = harness::run_scheme(workload, name, config, ff);
    const double value = objective == "time"     ? run.time_ratio
                         : objective == "energy" ? run.energy_ratio
                                                 : run.power_ratio;
    if (best_scheme.empty() || value < best_value) {
      best_scheme = name;
      best_value = value;
    }
    table.add_row({name, TablePrinter::num(run.time_ratio),
                   TablePrinter::num(run.energy_ratio),
                   TablePrinter::num(run.power_ratio)});
  }
  table.print(std::cout);

  std::cout << "\nRecommendation (minimize " << objective << "): "
            << best_scheme << " at " << TablePrinter::num(best_value)
            << "x the fault-free " << objective << ".\n";
  if (coupling > 0.5) {
    std::cout << "Note: high off-block coupling — forward recovery "
                 "reconstructions are inaccurate on this structure, which "
                 "is why redundancy/checkpointing rank higher (paper "
                 "Fig. 8).\n";
  } else {
    std::cout << "Note: well-localized coupling — forward recovery "
                 "reconstructs accurately here (paper Fig. 8, cvxbqp1 "
                 "class).\n";
  }
  return 0;
}
