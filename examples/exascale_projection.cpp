// Exascale what-if: measure a workload's resilience parameters at small
// scale, then project its recovery costs to large systems with the §6
// weak-scaling models — the paper's Fig. 9 workflow applied to a
// user-chosen configuration.
//
//   ./build/examples/exascale_projection [--matrix=crystm02]
//       [--per-process-mtbf-hours=6000] [--max-procs=1048576]

#include <iostream>

#include "core/options.hpp"
#include "core/table.hpp"
#include "harness/experiment.hpp"
#include "harness/scheme_factory.hpp"
#include "model/projection.hpp"
#include "sparse/roster.hpp"

int main(int argc, char** argv) {
  using namespace rsls;
  const Options options(argc, argv);
  const std::string matrix_name = options.get_string("matrix", "crystm02");
  const double mtbf_hours =
      options.get_double("per-process-mtbf-hours", 6000.0);
  const Index max_procs = options.get_index("max-procs", 1048576);

  // 1. Measure at small scale: FF baseline + LI-DVFS construction cost +
  //    extra-iteration overhead.
  harness::ExperimentConfig config;
  config.processes = 48;
  config.faults = 10;
  const auto& entry = sparse::roster_entry(matrix_name);
  const auto workload =
      harness::Workload::create(entry.make(/*quick=*/true), config.processes);
  const auto ff = harness::run_fault_free(workload, config);
  const auto fw = harness::run_scheme(workload, "LI-DVFS", config, ff);

  std::cout << "Measured on " << entry.name << " at " << config.processes
            << " ranks: t_const = "
            << TablePrinter::num(fw.t_const_mean * 1e6, 1)
            << " us/reconstruction, extra-iteration overhead = "
            << TablePrinter::num(100.0 * (fw.iteration_ratio - 1.0), 1)
            << "%\n\n";

  // 2. Feed the measurements into the §6 projection.
  model::ProjectionInputs inputs;
  inputs.t_solve = ff.time;
  inputs.iterations = ff.iterations;
  inputs.p1 = ff.power / static_cast<double>(config.processes);
  inputs.per_process_mtbf = mtbf_hours * 3600.0;
  inputs.fw_extra_fraction = fw.iteration_ratio - 1.0;
  inputs.fw_tconst_base = fw.t_const_mean;
  inputs.fw_tconst_per_process =
      fw.t_const_mean / static_cast<double>(config.processes) * 0.1;
  const auto machine = harness::machine_for(config.processes);
  inputs.crm_tc =
      harness::estimate_checkpoint_seconds(workload, machine, false);
  inputs.crd_tc_per_process =
      harness::estimate_checkpoint_seconds(workload, machine, true) /
      static_cast<double>(config.processes);

  IndexVec counts;
  for (Index p = 1024; p <= max_procs; p *= 4) {
    counts.push_back(p);
  }
  const auto points = model::project(inputs, counts);

  // 3. Report normalized T_res per scheme per scale.
  TablePrinter table({"procs", "MTBF (min)", "RD T_res", "CR-D T_res",
                      "CR-M T_res", "FW T_res", "best"});
  for (const auto& point : points) {
    const struct {
      const char* name;
      double value;
      bool halted;
    } schemes[] = {
        {"RD", point.rd.e_res_ratio, false},
        {"CR-D", point.cr_disk.e_res_ratio, point.cr_disk.halted},
        {"CR-M", point.cr_memory.e_res_ratio, point.cr_memory.halted},
        {"FW", point.fw.e_res_ratio, point.fw.halted},
    };
    const char* best = "-";
    double best_value = 0.0;
    for (const auto& s : schemes) {
      if (!s.halted && (best[0] == '-' || s.value < best_value)) {
        best = s.name;
        best_value = s.value;
      }
    }
    table.add_row({std::to_string(point.processes),
                   TablePrinter::num(point.system_mtbf / 60.0, 1),
                   TablePrinter::num(point.rd.t_res_ratio),
                   point.cr_disk.halted
                       ? "halt"
                       : TablePrinter::num(point.cr_disk.t_res_ratio),
                   TablePrinter::num(point.cr_memory.t_res_ratio),
                   TablePrinter::num(point.fw.t_res_ratio), best});
  }
  table.print(std::cout);
  std::cout << "\n(best = least resilience energy among schemes that still "
               "make progress; 'halt' = overhead reaches 100%, the paper's "
               "§6 warning for CR-D at exascale)\n";
  return 0;
}
