// Quickstart: solve one SPD system with CG on the virtual cluster, inject
// faults, and compare recovery schemes on iterations / time / energy.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart [--processes=64] [--faults=10]

#include <iostream>

#include "core/options.hpp"
#include "core/table.hpp"
#include "harness/experiment.hpp"
#include "harness/scheme_factory.hpp"
#include "sparse/generators.hpp"

int main(int argc, char** argv) {
  using namespace rsls;
  const Options options(argc, argv);
  const Index processes = options.get_index("processes", 64);
  const Index faults = options.get_index("faults", 10);

  // A 64×64 five-point Poisson problem: the simplest SPD workload.
  sparse::Csr a = sparse::laplacian_2d(64, 64);
  std::cout << "Matrix: 2D Laplacian, " << a.rows << " rows, " << a.nnz()
            << " nonzeros\n";

  harness::ExperimentConfig config;
  config.processes = processes;
  config.faults = faults;

  const auto workload = harness::Workload::create(std::move(a), processes);
  const auto ff = harness::run_fault_free(workload, config);
  std::cout << "Fault-free: " << ff.iterations << " iterations, "
            << TablePrinter::num(ff.time, 4) << " s (virtual), "
            << TablePrinter::num(ff.energy, 1) << " J, "
            << TablePrinter::num(ff.power, 1) << " W\n\n";

  TablePrinter table({"scheme", "iters", "iter x", "time x", "energy x",
                      "power x"});
  for (const auto& name : harness::iteration_scheme_names()) {
    const auto run = harness::run_scheme(workload, name, config, ff);
    table.add_row({name, std::to_string(run.report.cg.iterations),
                   TablePrinter::num(run.iteration_ratio),
                   TablePrinter::num(run.time_ratio),
                   TablePrinter::num(run.energy_ratio),
                   TablePrinter::num(run.power_ratio)});
  }
  table.print(std::cout);
  std::cout << "\n(iter/time/energy/power x = ratio to the fault-free run; "
               "RD trades 2x energy for fault-free iterations,\n forward "
               "recovery pays extra iterations instead.)\n";
  return 0;
}
