// Bring-your-own-matrix: load a Matrix Market file (e.g. the genuine
// SuiteSparse inputs from the paper's Table 3), optionally RCM-reorder it,
// and compare recovery schemes on it. Without a --file argument the
// example writes a sample .mtx, reads it back, and proceeds — exercising
// the full I/O path.
//
//   ./build/examples/custom_matrix --file=Kuu.mtx [--rcm] [--processes=48]

#include <iostream>

#include "core/error.hpp"
#include "core/options.hpp"
#include "core/table.hpp"
#include "harness/experiment.hpp"
#include "harness/scheme_factory.hpp"
#include "sparse/generators.hpp"
#include "sparse/matrix_stats.hpp"
#include "sparse/mmio.hpp"
#include "sparse/ordering.hpp"

int main(int argc, char** argv) {
  using namespace rsls;
  const Options options(argc, argv);
  const Index processes = options.get_index("processes", 48);

  sparse::Csr a;
  if (options.has("file")) {
    const std::string path = options.get_string("file", "");
    std::cout << "Loading " << path << " ...\n";
    a = sparse::read_matrix_market_file(path);
  } else {
    // Self-contained demo: write and re-read a sample matrix.
    const std::string path = "/tmp/rsls_sample.mtx";
    sparse::write_matrix_market_file(path, sparse::laplacian_2d(48, 48));
    std::cout << "No --file given; wrote and loaded a sample 2D Poisson "
                 "matrix at "
              << path << "\n";
    a = sparse::read_matrix_market_file(path);
  }
  RSLS_CHECK_MSG(sparse::is_symmetric(a),
                 "recovery schemes require a symmetric (SPD) matrix");

  if (options.get_bool("rcm", false)) {
    std::cout << "Applying reverse Cuthill-McKee reordering...\n";
    a = sparse::permute_symmetric(a, sparse::rcm_ordering(a));
  }
  const auto stats = sparse::compute_stats(a);
  std::cout << "Matrix: " << stats.rows << " rows, "
            << TablePrinter::num(stats.nnz_per_row, 1)
            << " nnz/row, bandwidth " << stats.bandwidth
            << ", off-block coupling "
            << TablePrinter::num(
                   100.0 * sparse::off_block_coupling(a, processes), 1)
            << "% at " << processes << " ranks\n\n";

  harness::ExperimentConfig config;
  config.processes = processes;
  config.faults = options.get_index("faults", 10);
  const auto workload = harness::Workload::create(std::move(a), processes);
  const auto ff = harness::run_fault_free(workload, config);
  std::cout << "Fault-free: " << ff.iterations << " iterations, "
            << TablePrinter::num(ff.time * 1e3, 2) << " ms (virtual)\n\n";

  TablePrinter table({"scheme", "iter x", "time x", "energy x"});
  for (const std::string name : {"RD", "F0", "LI", "LSI", "CR-M", "CR-D"}) {
    const auto run = harness::run_scheme(workload, name, config, ff);
    table.add_row({name, TablePrinter::num(run.iteration_ratio),
                   TablePrinter::num(run.time_ratio),
                   TablePrinter::num(run.energy_ratio)});
  }
  table.print(std::cout);
  return 0;
}
