// Job engine: admission control, priority scheduling, cancellation,
// deadlines, drain, and the end-to-end guarantee that a job served over
// the real socket returns a RunReport bitwise identical to a direct
// harness::run_scheme call with the same configuration.

#include "serve/engine.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <sstream>
#include <thread>
#include <vector>

#include "obs/run_report.hpp"
#include "serve/client.hpp"
#include "serve/server.hpp"

namespace rsls::serve {
namespace {

JobSpec spec_from(const std::string& json) {
  return parse_job_spec(obs::parse_json(json));
}

constexpr const char* kSmallJob =
    "{\"matrix\":\"laplacian_1d\",\"n\":300,\"scheme\":\"CR-M\","
    "\"faults\":2,\"processes\":8}";

JobEngine::Options one_worker(Index queue_depth = 64) {
  JobEngine::Options options;
  options.workers = 1;
  options.queue_depth = queue_depth;
  return options;
}

std::string report_text(const obs::RunReport& report) {
  std::ostringstream os;
  obs::write_run_report(os, report);
  return os.str();
}

TEST(ServeEngine, RunsAJobToSuccessWithProgressEvents) {
  JobEngine engine(one_worker());
  const std::string id = engine.submit(spec_from(kSmallJob));
  engine.wait_idle();

  const auto status = engine.status(id);
  ASSERT_TRUE(status.has_value());
  EXPECT_EQ(status->state, JobState::kSucceeded);
  EXPECT_GT(status->events, 0u);
  ASSERT_NE(status->report, nullptr);
  EXPECT_EQ(status->report->scheme, "CR-M");
  EXPECT_EQ(status->report->source, "serve");
}

TEST(ServeEngine, ReportMatchesDirectRunSchemeBitwise) {
  // Serve path: through the engine (same code the socket path drives).
  JobEngine engine(one_worker());
  const JobSpec spec = spec_from(kSmallJob);
  const std::string id = engine.submit(spec);
  engine.wait_idle();
  const auto status = engine.status(id);
  ASSERT_TRUE(status.has_value());
  ASSERT_NE(status->report, nullptr);

  // Direct path: identical resolved config, no server anywhere.
  sparse::Csr matrix = build_matrix(spec);
  const auto workload = harness::Workload::create(
      std::move(matrix), spec.config.processes, spec.matrix);
  const harness::FfBaseline ff =
      harness::run_fault_free(workload, spec.config);
  const harness::SchemeRun direct =
      harness::run_scheme(workload, spec.scheme, spec.config, ff);
  ASSERT_NE(direct.run_report, nullptr);

  EXPECT_EQ(report_text(*status->report), report_text(*direct.run_report));
}

TEST(ServeEngine, HigherPriorityJobsDispatchFirst) {
  JobEngine engine(one_worker());
  // Hold dispatch so the queue order is decided before any job runs.
  engine.pause();
  const std::string low = engine.submit(spec_from(
      "{\"matrix\":\"laplacian_1d\",\"n\":300,\"faults\":1,"
      "\"processes\":8,\"priority\":0}"));
  const std::string high = engine.submit(spec_from(
      "{\"matrix\":\"laplacian_1d\",\"n\":300,\"faults\":1,"
      "\"processes\":8,\"priority\":5}"));
  engine.resume();
  engine.wait_idle();

  const auto low_status = engine.status(low);
  const auto high_status = engine.status(high);
  ASSERT_TRUE(low_status.has_value());
  ASSERT_TRUE(high_status.has_value());
  EXPECT_EQ(high_status->dispatch_seq, 1u);  // overtook the earlier submit
  EXPECT_EQ(low_status->dispatch_seq, 2u);
}

TEST(ServeEngine, RejectsPastTheQueueBoundWithStructuredError) {
  JobEngine engine(one_worker(/*queue_depth=*/2));
  engine.pause();  // nothing dispatches: queued count grows deterministically
  engine.submit(spec_from(kSmallJob));
  engine.submit(spec_from(kSmallJob));
  try {
    engine.submit(spec_from(kSmallJob));
    FAIL() << "expected AdmissionError";
  } catch (const AdmissionError& e) {
    EXPECT_EQ(e.reason, "queue_full");
  }
  engine.resume();
  engine.wait_idle();
  const obs::MetricsSnapshot metrics = engine.metrics();
  const auto counter = [&metrics](const std::string& name) {
    for (const auto& [key, value] : metrics.counters) {
      if (key == name) {
        return value;
      }
    }
    return -1.0;
  };
  EXPECT_EQ(counter("serve.jobs.rejected"), 1.0);
  EXPECT_EQ(counter("serve.jobs.submitted"), 2.0);
}

TEST(ServeEngine, CancelsAQueuedJobImmediately) {
  JobEngine engine(one_worker());
  engine.pause();
  const std::string id = engine.submit(spec_from(kSmallJob));
  EXPECT_TRUE(engine.cancel(id));
  const auto status = engine.status(id);
  ASSERT_TRUE(status.has_value());
  EXPECT_EQ(status->state, JobState::kCancelled);
  engine.resume();
  engine.wait_idle();  // the orphaned pull task must not hang the drain
  EXPECT_EQ(engine.status(id)->state, JobState::kCancelled);
}

TEST(ServeEngine, CancelsARunningJobViaItsObserver) {
  JobEngine engine(one_worker());
  // A hard problem so the solve is still running when cancel arrives.
  const std::string id = engine.submit(spec_from(
      "{\"matrix\":\"irregular\",\"n\":3000,\"faults\":0,"
      "\"processes\":8,\"tolerance\":1e-14}"));
  // Wait until it is actually running and has produced an event.
  while (true) {
    const auto status = engine.status(id);
    ASSERT_TRUE(status.has_value());
    if (status->state == JobState::kRunning && status->events > 0) {
      break;
    }
    if (status->state != JobState::kQueued &&
        status->state != JobState::kRunning) {
      GTEST_SKIP() << "job finished before cancel could land";
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_TRUE(engine.cancel(id));
  engine.wait_idle();
  EXPECT_EQ(engine.status(id)->state, JobState::kCancelled);
}

TEST(ServeEngine, DeadlineIsPricedInVirtualTime) {
  JobEngine engine(one_worker());
  // Virtual makespans of these solves are far above a nanosecond budget;
  // the verdict depends only on simulated time, so it is deterministic.
  const std::string id = engine.submit(spec_from(
      "{\"matrix\":\"laplacian_1d\",\"n\":300,\"faults\":2,"
      "\"processes\":8,\"deadline_s\":1e-9}"));
  engine.wait_idle();
  const auto status = engine.status(id);
  ASSERT_TRUE(status.has_value());
  EXPECT_EQ(status->state, JobState::kDeadlineExceeded);
  EXPECT_NE(status->error.find("deadline"), std::string::npos);

  // A generous virtual budget passes.
  const std::string ok = engine.submit(spec_from(
      "{\"matrix\":\"laplacian_1d\",\"n\":300,\"faults\":2,"
      "\"processes\":8,\"deadline_s\":1e6}"));
  engine.wait_idle();
  EXPECT_EQ(engine.status(ok)->state, JobState::kSucceeded);
}

TEST(ServeEngine, StreamEventsReplaysThenFollowsToTerminalState) {
  JobEngine engine(one_worker());
  const std::string id = engine.submit(spec_from(kSmallJob));
  std::vector<JobEvent> seen;
  const JobState final_state =
      engine.stream_events(id, [&seen](const JobEvent& event) {
        seen.push_back(event);
        return true;
      });
  EXPECT_EQ(final_state, JobState::kSucceeded);
  ASSERT_GT(seen.size(), 1u);
  EXPECT_EQ(seen.front().iteration, 0);
  // Non-decreasing, not strict: a recovery re-entry records the residual
  // again at the iteration it resumed from.
  for (std::size_t i = 1; i < seen.size(); ++i) {
    EXPECT_GE(seen[i].iteration, seen[i - 1].iteration);
  }
  // A late subscriber replays the identical sequence.
  std::vector<JobEvent> replay;
  engine.stream_events(id, [&replay](const JobEvent& event) {
    replay.push_back(event);
    return true;
  });
  ASSERT_EQ(replay.size(), seen.size());
  for (std::size_t i = 0; i < seen.size(); ++i) {
    EXPECT_EQ(replay[i].iteration, seen[i].iteration);
    EXPECT_EQ(replay[i].residual, seen[i].residual);
  }
}

TEST(ServeEngine, DrainRejectsNewSubmissionsAndWaitsForCompletion) {
  JobEngine engine(one_worker());
  const std::string id = engine.submit(spec_from(kSmallJob));
  engine.drain();
  EXPECT_EQ(engine.status(id)->state, JobState::kSucceeded);
  EXPECT_THROW(engine.submit(spec_from(kSmallJob)), AdmissionError);
}

TEST(ServeEngine, RepeatSubmissionsHitTheArtifactCache) {
  JobEngine engine(one_worker());
  const std::string first = engine.submit(spec_from(kSmallJob));
  engine.wait_idle();
  const std::string second = engine.submit(spec_from(kSmallJob));
  engine.wait_idle();
  EXPECT_FALSE(engine.status(first)->cache_hit);
  EXPECT_TRUE(engine.status(second)->cache_hit);
  EXPECT_EQ(engine.cache().stats().hits, 1u);
  EXPECT_EQ(engine.cache().stats().misses, 1u);
}

TEST(ServeEngine, EndToEndOverTheSocketMatchesDirectRun) {
  const JobSpec spec = spec_from(kSmallJob);

  SolveServer server(0, one_worker());
  std::thread accept_thread([&server] { server.serve_forever(); });
  const Client client(server.port());

  const std::string id = client.submit(kSmallJob);
  const obs::JsonValue done = client.wait(id);
  EXPECT_EQ(done.at("state").as_string(), "succeeded");

  // At least one progress event must have streamed over the wire.
  std::size_t events = 0;
  const std::string final_state = client.stream_events(
      id, [&events](const std::string&) { ++events; });
  EXPECT_EQ(final_state, "succeeded");
  EXPECT_GT(events, 0u);

  // The report that crossed the socket equals the direct run's, field
  // for field, after one JSON parse of each (bitwise numeric identity:
  // both sides print with shortest-round-trip doubles).
  sparse::Csr matrix = build_matrix(spec);
  const auto workload = harness::Workload::create(
      std::move(matrix), spec.config.processes, spec.matrix);
  const harness::FfBaseline ff =
      harness::run_fault_free(workload, spec.config);
  const harness::SchemeRun direct =
      harness::run_scheme(workload, spec.scheme, spec.config, ff);
  ASSERT_NE(direct.run_report, nullptr);
  std::ostringstream direct_text;
  obs::write_run_report(direct_text, *direct.run_report);

  const obs::JsonValue wire_report = done.at("report");
  const obs::JsonValue direct_parsed = obs::parse_json(direct_text.str());
  EXPECT_EQ(obs::to_string(wire_report), obs::to_string(direct_parsed));

  server.shutdown();
  accept_thread.join();
}

}  // namespace
}  // namespace rsls::serve
