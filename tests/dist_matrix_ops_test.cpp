// Unit tests: distributed matrix structure (halo accounting) and the
// cost-charged distributed kernels (numerics must match the sequential
// kernels exactly; costs must be charged).

#include <gtest/gtest.h>

#include <cmath>

#include "core/error.hpp"
#include "dist/dist_matrix.hpp"
#include "dist/dist_ops.hpp"
#include "sparse/generators.hpp"
#include "sparse/vector_ops.hpp"
#include "simrt/cluster.hpp"

namespace rsls::dist {
namespace {

using power::PhaseTag;

simrt::MachineConfig tiny_machine() {
  simrt::MachineConfig config = simrt::paper_cluster();
  config.nodes = 1;
  return config;
}

TEST(DistMatrixTest, TridiagonalHaloStructure) {
  // 1D Laplacian on 12 rows, 4 parts: inner parts receive 2 remote values
  // from 2 neighbours; boundary parts 1 from 1.
  const DistMatrix a(sparse::laplacian_1d(12), 4);
  EXPECT_DOUBLE_EQ(a.halo_bytes()[0], 8.0);
  EXPECT_DOUBLE_EQ(a.halo_bytes()[1], 16.0);
  EXPECT_DOUBLE_EQ(a.halo_bytes()[2], 16.0);
  EXPECT_DOUBLE_EQ(a.halo_bytes()[3], 8.0);
  EXPECT_EQ(a.halo_messages()[0], 1);
  EXPECT_EQ(a.halo_messages()[1], 2);
  EXPECT_EQ(a.halo_messages()[3], 1);
}

TEST(DistMatrixTest, LocalNnzSumsToTotal) {
  const DistMatrix a(sparse::laplacian_2d(8, 8), 5);
  Index total = 0;
  for (Index r = 0; r < 5; ++r) {
    total += a.local_nnz(r);
  }
  EXPECT_EQ(total, a.global().nnz());
}

TEST(DistMatrixTest, DiagonalBlockIsPrincipalSubmatrix) {
  const sparse::Csr global = sparse::laplacian_1d(10);
  const DistMatrix a(global, 3);
  const sparse::Csr block = a.diagonal_block(1);
  const Index begin = a.partition().begin(1);
  EXPECT_EQ(block.rows, a.partition().block_rows(1));
  for (Index i = 0; i < block.rows; ++i) {
    for (Index j = 0; j < block.cols; ++j) {
      EXPECT_DOUBLE_EQ(block.at(i, j), global.at(begin + i, begin + j));
    }
  }
}

TEST(DistMatrixTest, RowBlockKeepsGlobalColumns) {
  const DistMatrix a(sparse::laplacian_1d(10), 3);
  const sparse::Csr rows = a.row_block(1);
  EXPECT_EQ(rows.cols, 10);
  EXPECT_EQ(rows.rows, a.partition().block_rows(1));
}

TEST(DistMatrixTest, ByteAccounting) {
  const DistMatrix a(sparse::laplacian_1d(10), 3);
  EXPECT_DOUBLE_EQ(a.vector_bytes(), 80.0);
  EXPECT_DOUBLE_EQ(a.block_bytes(0), 8.0 * 4.0);  // first block has 4 rows
}

TEST(DistMatrixTest, RejectsNonSquare) {
  sparse::Csr rect;
  rect.rows = 2;
  rect.cols = 3;
  rect.row_ptr = {0, 0, 0};
  EXPECT_THROW(DistMatrix(rect, 2), Error);
}

TEST(DistOpsTest, SpmvMatchesSequential) {
  const sparse::Csr global = sparse::laplacian_2d(6, 6);
  const DistMatrix a(global, 6);
  simrt::VirtualCluster cluster(tiny_machine(), 6);
  RealVec x(36);
  for (std::size_t i = 0; i < x.size(); ++i) {
    x[i] = static_cast<double>(i) * 0.1;
  }
  RealVec y_dist(36), y_seq(36);
  dist_spmv(a, cluster, x, y_dist, PhaseTag::kSolve);
  sparse::spmv(global, x, y_seq);
  EXPECT_EQ(y_dist, y_seq);
  // Costs were charged: compute plus halo time advanced clocks.
  EXPECT_GT(cluster.elapsed(), 0.0);
  EXPECT_GT(cluster.energy().core_energy(PhaseTag::kSolve), 0.0);
  EXPECT_GT(cluster.energy().core_energy(PhaseTag::kComm), 0.0);
}

TEST(DistOpsTest, DotMatchesAndSynchronizes) {
  const DistMatrix a(sparse::laplacian_1d(12), 4);
  simrt::VirtualCluster cluster(tiny_machine(), 4);
  RealVec x(12, 2.0), y(12, 3.0);
  const Real result =
      dist_dot(a.partition(), cluster, x, y, PhaseTag::kSolve);
  EXPECT_DOUBLE_EQ(result, 72.0);
  // Allreduce synchronizes all clocks.
  const Seconds t0 = cluster.now(0);
  for (Index r = 1; r < 4; ++r) {
    EXPECT_DOUBLE_EQ(cluster.now(r), t0);
  }
}

TEST(DistOpsTest, Norm2Matches) {
  const DistMatrix a(sparse::laplacian_1d(9), 3);
  simrt::VirtualCluster cluster(tiny_machine(), 3);
  RealVec x(9, 2.0);
  EXPECT_DOUBLE_EQ(dist_norm2(a.partition(), cluster, x, PhaseTag::kSolve),
                   6.0);
}

TEST(DistOpsTest, AxpyAndXpbyMatchSequential) {
  const DistMatrix a(sparse::laplacian_1d(8), 2);
  simrt::VirtualCluster cluster(tiny_machine(), 2);
  RealVec x(8, 1.0);
  RealVec y(8, 2.0);
  dist_axpy(a.partition(), cluster, 3.0, x, y, PhaseTag::kSolve);
  for (const Real v : y) {
    EXPECT_DOUBLE_EQ(v, 5.0);
  }
  dist_xpby(a.partition(), cluster, x, 2.0, y, PhaseTag::kSolve);
  for (const Real v : y) {
    EXPECT_DOUBLE_EQ(v, 11.0);
  }
}

TEST(DistOpsTest, RankCountMustMatch) {
  const DistMatrix a(sparse::laplacian_1d(8), 2);
  simrt::VirtualCluster cluster(tiny_machine(), 3);
  RealVec x(8), y(8);
  EXPECT_THROW(dist_spmv(a, cluster, x, y, PhaseTag::kSolve), Error);
}

TEST(DistOpsTest, IrregularMatrixHasLargerHalo) {
  sparse::IrregularSpdConfig config;
  config.n = 128;
  config.extra_per_row = 5;
  config.diag_excess = 0.1;
  config.seed = 5;
  const DistMatrix irregular(sparse::irregular_spd(config), 8);
  sparse::BandedSpdConfig banded_config;
  banded_config.n = 128;
  banded_config.half_bandwidth = 3;
  banded_config.diag_excess = 0.1;
  banded_config.seed = 5;
  const DistMatrix banded(sparse::banded_spd(banded_config), 8);
  double irregular_halo = 0.0, banded_halo = 0.0;
  for (Index r = 0; r < 8; ++r) {
    irregular_halo += irregular.halo_bytes()[static_cast<std::size_t>(r)];
    banded_halo += banded.halo_bytes()[static_cast<std::size_t>(r)];
  }
  EXPECT_GT(irregular_halo, 2.0 * banded_halo);
}

}  // namespace
}  // namespace rsls::dist
