// Compilation test: the umbrella header exposes the whole public API and
// the advertised README snippet compiles and runs against it.

#include "rsls.hpp"

#include <gtest/gtest.h>

namespace rsls {
namespace {

TEST(UmbrellaTest, ReadmeQuickstartSnippet) {
  auto workload =
      harness::Workload::create(sparse::laplacian_2d(16, 16), 16);
  harness::ExperimentConfig config;
  config.processes = 16;
  config.faults = 4;
  auto ff = harness::run_fault_free(workload, config);
  auto li = harness::run_scheme(workload, "LI-DVFS", config, ff);
  EXPECT_TRUE(li.report.cg.converged);
  EXPECT_GE(li.iteration_ratio, 1.0);
  EXPECT_GE(li.energy_ratio, 1.0);
}

TEST(UmbrellaTest, EveryLayerReachable) {
  // One symbol from each library proves the umbrella pulls them all in.
  EXPECT_GT(Rng(1).uniform(), -1.0);                       // core
  EXPECT_EQ(sparse::laplacian_1d(3).rows, 3);              // sparse
  EXPECT_DOUBLE_EQ(la::spmv_flops(5), 10.0);               // la
  EXPECT_EQ(power::PowerModel(power::PowerModelConfig{})   // power
                .config()
                .core_static,
            1.0);
  EXPECT_EQ(simrt::paper_node().total_cores(), 24);        // simrt
  EXPECT_EQ(dist::Partition(8, 2).block_rows(0), 4);       // dist
  EXPECT_EQ(solver::SolverVariant::kClassic,                     // solver
            solver::CgOptions{}.variant);
  EXPECT_EQ(resilience::Dmr().replica_factor(), 2);        // resilience
  EXPECT_EQ(abft::Encoding(dist::Partition(8, 2), 2)       // abft
                .parity_blocks(),
            2);
  EXPECT_GT(model::young_interval(1.0, 100.0), 0.0);       // model
  EXPECT_EQ(harness::all_scheme_names().size(), 15u);      // harness
}

}  // namespace
}  // namespace rsls
