// Flight-recorder tests: TimeSeries stride/amendment/decimation
// mechanics, the per-rank energy attribution invariant (rank sums equal
// the phase totals), the schema_version-2 series/per_rank blocks in the
// RunReport, and the guarantee that switching the recorder on leaves the
// run's numbers bit-identical.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include <unistd.h>

#include "harness/experiment.hpp"
#include "obs/json.hpp"
#include "obs/recorder.hpp"
#include "obs/time_series.hpp"
#include "power/rapl.hpp"
#include "sparse/generators.hpp"

namespace rsls {
namespace {

using obs::JsonValue;
using obs::SeriesOptions;
using obs::SeriesPoint;
using obs::TimeSeries;

SeriesPoint point(Index iteration, Seconds time, Real residual,
                  Joules energy) {
  SeriesPoint p;
  p.iteration = iteration;
  p.time_s = time;
  p.relative_residual = residual;
  p.energy_j = energy;
  return p;
}

// --- TimeSeries mechanics --------------------------------------------------

TEST(TimeSeriesTest, StrideKeepsOnGridIterationsOnly) {
  TimeSeries series(SeriesOptions{3, 1024});
  for (Index i = 0; i <= 10; ++i) {
    if (series.due(i)) {
      series.sample(point(i, 0.1 * static_cast<double>(i), 1.0, 0.0));
    }
  }
  ASSERT_EQ(series.points().size(), 4u);  // 0, 3, 6, 9
  for (std::size_t i = 0; i < series.points().size(); ++i) {
    EXPECT_EQ(series.points()[i].iteration, static_cast<Index>(3 * i));
  }
}

TEST(TimeSeriesTest, ResamplingNewestIterationReplacesIt) {
  TimeSeries series(SeriesOptions{1, 1024});
  series.sample(point(0, 0.0, 1.0, 0.0));
  series.sample(point(1, 1.0, 0.5, 10.0));
  // Post-recovery amendment: same iteration, corrected residual, more
  // energy spent. The point is replaced, not appended.
  series.sample(point(1, 2.0, 0.8, 30.0));
  ASSERT_EQ(series.points().size(), 2u);
  EXPECT_EQ(series.points()[1].relative_residual, 0.8);
  EXPECT_EQ(series.points()[1].energy_j, 30.0);
  // Instantaneous power re-derived from the new predecessor gap.
  EXPECT_DOUBLE_EQ(series.points()[1].power_w, 30.0 / 2.0);
}

TEST(TimeSeriesTest, DecimationBoundsMemoryAndKeepsEndpoints) {
  const Index max_points = 16;
  TimeSeries series(SeriesOptions{1, max_points});
  const Index n = 1000;
  for (Index i = 0; i <= n; ++i) {
    if (series.due(i)) {
      series.sample(point(i, static_cast<double>(i), 1.0,
                          static_cast<double>(i) * 2.0));
    }
  }
  EXPECT_LE(series.points().size(), static_cast<std::size_t>(max_points));
  EXPECT_GT(series.decimations(), 0);
  EXPECT_EQ(series.points().front().iteration, 0);
  // The newest retained point is the last on-grid iteration (the grid
  // coarsened under decimation, so the very last iteration may be off it).
  EXPECT_EQ(series.points().back().iteration,
            (n / series.stride()) * series.stride());
  EXPECT_GE(series.points().back().iteration, n - series.stride());
  // Cumulative columns survive decimation exactly; iterations ascend.
  for (std::size_t i = 1; i < series.points().size(); ++i) {
    const SeriesPoint& prev = series.points()[i - 1];
    const SeriesPoint& cur = series.points()[i];
    EXPECT_GT(cur.iteration, prev.iteration);
    EXPECT_EQ(cur.energy_j, static_cast<double>(cur.iteration) * 2.0);
    // Rates refreshed against the surviving predecessor.
    EXPECT_DOUBLE_EQ(cur.power_w, (cur.energy_j - prev.energy_j) /
                                      (cur.time_s - prev.time_s));
  }
}

TEST(TimeSeriesTest, DecimationIsDeterministic) {
  const auto fill = [] {
    TimeSeries series(SeriesOptions{1, 32});
    for (Index i = 0; i <= 777; ++i) {
      if (series.due(i)) {
        series.sample(point(i, static_cast<double>(i) * 0.01,
                            1.0 / (1.0 + static_cast<double>(i)),
                            static_cast<double>(i)));
      }
    }
    return series.snapshot();
  };
  const auto a = fill();
  const auto b = fill();
  ASSERT_EQ(a.points.size(), b.points.size());
  EXPECT_EQ(a.stride, b.stride);
  EXPECT_EQ(a.decimations, b.decimations);
  for (std::size_t i = 0; i < a.points.size(); ++i) {
    EXPECT_EQ(a.points[i].iteration, b.points[i].iteration);
    EXPECT_EQ(a.points[i].relative_residual, b.points[i].relative_residual);
    EXPECT_EQ(a.points[i].power_w, b.points[i].power_w);  // bitwise
  }
}

TEST(TimeSeriesTest, EventsAreBoundedWithDropCounter) {
  TimeSeries series(SeriesOptions{1, 4});
  for (Index i = 0; i < 10; ++i) {
    series.add_event({"fault", i, static_cast<double>(i), ""});
  }
  EXPECT_EQ(series.events().size(), 4u);
  EXPECT_EQ(series.dropped_events(), 6u);
  EXPECT_EQ(series.snapshot().dropped_events, 6u);
}

// --- observed run fixture --------------------------------------------------

std::string read_file(const std::string& path) {
  std::ifstream is(path);
  EXPECT_TRUE(is.good()) << "missing artifact " << path;
  std::ostringstream os;
  os << is.rdbuf();
  return os.str();
}

/// One faulted LI run with the flight recorder and per-rank attribution
/// on, RunReport emitted; shared across the block tests below.
class SeriesRunTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    const std::string pid = std::to_string(::getpid());
    report_path_ = new std::string(::testing::TempDir() + "series_report_" +
                                   pid + ".jsonl");
    std::remove(report_path_->c_str());

    sparse::BandedSpdConfig matrix_config;
    matrix_config.n = 192;
    matrix_config.half_bandwidth = 5;
    matrix_config.diag_excess = 1e-2;
    matrix_config.seed = 7;
    harness::ExperimentConfig config;
    config.processes = 4;
    config.faults = 2;
    config.tolerance = 1e-8;
    config.record_residuals = true;  // the reference the series must match
    const harness::Workload workload = harness::Workload::create(
        sparse::banded_spd(matrix_config), config.processes, "banded-192");
    const harness::FfBaseline ff = harness::run_fault_free(workload, config);

    config.observability.enabled = true;
    config.observability.source = "obs_series_test";
    config.observability.report_path = *report_path_;
    config.observability.series = true;
    config.observability.per_rank = true;
    run_ = new harness::SchemeRun(
        harness::run_scheme(workload, "LI", config, ff));
    report_ = new JsonValue(obs::parse_json(read_file(*report_path_)));
  }

  static void TearDownTestSuite() {
    std::remove(report_path_->c_str());
    delete report_;
    delete run_;
    delete report_path_;
    report_ = nullptr;
    run_ = nullptr;
    report_path_ = nullptr;
  }

  static std::string* report_path_;
  static harness::SchemeRun* run_;
  static JsonValue* report_;
};

std::string* SeriesRunTest::report_path_ = nullptr;
harness::SchemeRun* SeriesRunTest::run_ = nullptr;
JsonValue* SeriesRunTest::report_ = nullptr;

TEST_F(SeriesRunTest, ReportBumpsToSchemaVersion2) {
  EXPECT_DOUBLE_EQ(report_->at("schema_version").as_number(), 2.0);
  EXPECT_TRUE(report_->at("energy").contains("per_rank"));
  EXPECT_TRUE(report_->contains("series"));
}

TEST_F(SeriesRunTest, SeriesReproducesResidualHistoryPointForPoint) {
  const auto& points = run_->series.points;
  const auto& history = run_->report.cg.residual_history;
  ASSERT_FALSE(points.empty());
  ASSERT_EQ(points.size(), history.size());
  for (std::size_t i = 0; i < points.size(); ++i) {
    EXPECT_EQ(points[i].iteration, static_cast<Index>(i));
    EXPECT_EQ(points[i].relative_residual, history[i]);  // bitwise
  }
}

TEST_F(SeriesRunTest, SeriesColumnsAreCumulativeAndEndAtRunTotals) {
  const auto& points = run_->series.points;
  ASSERT_GE(points.size(), 2u);
  for (std::size_t i = 1; i < points.size(); ++i) {
    EXPECT_GE(points[i].time_s, points[i - 1].time_s);
    EXPECT_GE(points[i].energy_j, points[i - 1].energy_j);
    EXPECT_GE(points[i].comm_messages, points[i - 1].comm_messages);
  }
  // The last sample's cumulative energy is within one iteration of the
  // run total (the final convergence check happens after the sample).
  EXPECT_LE(points.back().energy_j, run_->report.energy);
  EXPECT_GT(points.back().energy_j, 0.9 * run_->report.energy);
}

TEST_F(SeriesRunTest, SeriesMarksFaultAndRecoveryEvents) {
  Index faults = 0;
  Index recoveries = 0;
  for (const auto& event : run_->series.events) {
    if (event.kind == "fault") {
      ++faults;
    } else if (event.kind == "recovery") {
      ++recoveries;
    }
  }
  EXPECT_EQ(faults, run_->report.faults);
  EXPECT_EQ(recoveries, run_->report.recoveries);
}

TEST_F(SeriesRunTest, PerRankEnergySumsToPhaseTotals) {
  // The PR 2 invariant extended per rank: summing the per-rank table
  // over ranks reproduces each phase's core total to 1e-9 relative.
  const auto& account = run_->report.account;
  const auto& per_rank = report_->at("energy").at("per_rank").as_array();
  ASSERT_EQ(per_rank.size(), 4u);  // every rank charged something
  for (std::size_t t = 0; t < power::kPhaseTagCount; ++t) {
    const auto tag = static_cast<power::PhaseTag>(t);
    const std::string name = power::to_string(tag);
    double sum = 0.0;
    for (const JsonValue& rank : per_rank) {
      const auto& phases = rank.at("phases");
      if (phases.contains(name)) {
        sum += phases.at(name).as_number();
      }
    }
    const Joules total = account.core_energy(tag);
    if (total > 0.0) {
      EXPECT_NEAR(sum / total, 1.0, 1e-9) << name;
    } else {
      EXPECT_EQ(sum, 0.0) << name;
    }
  }
}

TEST_F(SeriesRunTest, SeriesBlockRoundTripsThroughJson) {
  const auto& series = report_->at("series");
  EXPECT_DOUBLE_EQ(series.at("stride").as_number(), 1.0);
  const auto& points = series.at("points").as_array();
  ASSERT_EQ(points.size(), run_->series.points.size());
  for (std::size_t i = 0; i < points.size(); ++i) {
    EXPECT_EQ(points[i].at("relative_residual").as_number(),
              run_->series.points[i].relative_residual);  // bitwise
    EXPECT_EQ(points[i].at("energy_j").as_number(),
              run_->series.points[i].energy_j);
  }
  const auto& events = series.at("events").as_array();
  EXPECT_EQ(events.size(), run_->series.events.size());
}

// --- determinism -----------------------------------------------------------

TEST(SeriesDeterminismTest, RecorderLeavesRunBitIdentical) {
  const auto run_one = [](bool series) {
    const sparse::Csr a = sparse::banded_spd({192, 4, 1.0, 0.02, 1.0, 77});
    const auto workload = harness::Workload::create(a, 8);
    harness::ExperimentConfig config;
    config.processes = 8;
    config.faults = 6;
    config.scheme.cr_interval_iterations = 25;
    if (series) {
      config.observability.enabled = true;
      config.observability.series = true;
      config.observability.per_rank = true;
    }
    const auto ff = harness::run_fault_free(workload, config);
    return harness::run_scheme(workload, "LI", config, ff);
  };
  const auto off = run_one(false);
  const auto on = run_one(true);
  EXPECT_EQ(off.report.cg.iterations, on.report.cg.iterations);
  EXPECT_EQ(off.report.cg.relative_residual,
            on.report.cg.relative_residual);  // bitwise
  EXPECT_EQ(off.report.time, on.report.time);
  EXPECT_EQ(off.report.energy, on.report.energy);
  EXPECT_TRUE(off.series.empty());
  EXPECT_FALSE(on.series.empty());
}

}  // namespace
}  // namespace rsls
