// Unit tests: power model and RAPL-style energy accounting. Includes the
// §4.2 calibration checks the whole Fig. 7 reproduction rests on.

#include <gtest/gtest.h>

#include "core/error.hpp"
#include "power/power_model.hpp"
#include "power/rapl.hpp"

namespace rsls::power {
namespace {

TEST(FrequencyTableTest, SnapClampsAndGrids) {
  FrequencyTable table;
  EXPECT_DOUBLE_EQ(table.snap(gigahertz(0.5)), gigahertz(1.2));
  EXPECT_DOUBLE_EQ(table.snap(gigahertz(9.9)), gigahertz(2.3));
  EXPECT_NEAR(table.snap(gigahertz(1.74)), gigahertz(1.7), 1.0);
  EXPECT_NEAR(table.snap(gigahertz(1.76)), gigahertz(1.8), 1.0);
}

TEST(FrequencyTableTest, StateCount) {
  FrequencyTable table;
  EXPECT_EQ(table.state_count(), 12);  // 1.2 … 2.3 in 0.1 steps
}

TEST(PowerModelTest, VoltageEndpoints) {
  const PowerModel model{PowerModelConfig{}};
  EXPECT_DOUBLE_EQ(model.voltage(gigahertz(1.2)), 0.8);
  EXPECT_DOUBLE_EQ(model.voltage(gigahertz(2.3)), 1.1);
}

TEST(PowerModelTest, DynamicScaleNormalizedAtMax) {
  const PowerModel model{PowerModelConfig{}};
  EXPECT_DOUBLE_EQ(model.dynamic_scale(gigahertz(2.3)), 1.0);
  EXPECT_LT(model.dynamic_scale(gigahertz(1.2)), 0.35);
  EXPECT_GT(model.dynamic_scale(gigahertz(1.2)), 0.2);
}

TEST(PowerModelTest, PowerMonotoneInFrequency) {
  const PowerModel model{PowerModelConfig{}};
  Watts prev = 0.0;
  for (double ghz = 1.2; ghz <= 2.3; ghz += 0.1) {
    const Watts p = model.core_power(gigahertz(ghz), Activity::kActive);
    EXPECT_GT(p, prev);
    prev = p;
  }
}

TEST(PowerModelTest, ActivityOrdering) {
  const PowerModel model{PowerModelConfig{}};
  const Hertz f = gigahertz(2.3);
  EXPECT_GT(model.core_power(f, Activity::kActive),
            model.core_power(f, Activity::kWaiting));
  EXPECT_GT(model.core_power(f, Activity::kWaiting),
            model.core_power(f, Activity::kDiskWait));
  EXPECT_GT(model.core_power(f, Activity::kDiskWait),
            model.core_power(f, Activity::kSleep));
}

TEST(PowerModelTest, SleepIgnoresFrequency) {
  const PowerModel model{PowerModelConfig{}};
  EXPECT_DOUBLE_EQ(model.core_power(gigahertz(1.2), Activity::kSleep),
                   model.core_power(gigahertz(2.3), Activity::kSleep));
}

TEST(PowerModelTest, NodeConstantScalesWithSockets) {
  const PowerModel model{PowerModelConfig{}};
  EXPECT_DOUBLE_EQ(model.node_constant_power(2),
                   2.0 * model.node_constant_power(1));
}

// §4.2 calibration: on a 24-core node with one rank reconstructing, node
// power ≈ 0.75× of all-active at f_max and ≈ 0.45× with the waiting
// cores pinned to f_min (paper's measured ratios).
TEST(PowerModelTest, Section42NodePowerRatios) {
  const PowerModel model{PowerModelConfig{}};
  const double cores = 24.0;
  const Hertz f_max = gigahertz(2.3);
  const Hertz f_min = gigahertz(1.2);
  const Watts constant = model.node_constant_power(2);
  const Watts all_active =
      cores * model.core_power(f_max, Activity::kActive) + constant;
  const Watts waiting_max =
      model.core_power(f_max, Activity::kActive) +
      (cores - 1) * model.core_power(f_max, Activity::kWaiting) + constant;
  const Watts waiting_min =
      model.core_power(f_max, Activity::kActive) +
      (cores - 1) * model.core_power(f_min, Activity::kWaiting) + constant;
  EXPECT_NEAR(waiting_max / all_active, 0.75, 0.06);
  EXPECT_NEAR(waiting_min / all_active, 0.45, 0.06);
}

TEST(PowerModelTest, RejectsInvalidConfig) {
  PowerModelConfig config;
  config.freq.min_hz = 0.0;
  EXPECT_THROW(PowerModel{config}, Error);
  config = PowerModelConfig{};
  config.core_dynamic_max = 0.0;
  EXPECT_THROW(PowerModel{config}, Error);
}

TEST(EnergyAccountTest, ChargesByTag) {
  EnergyAccount account;
  account.charge_core(PhaseTag::kSolve, 10.0);
  account.charge_core(PhaseTag::kCheckpoint, 2.0);
  account.charge_core(PhaseTag::kSolve, 5.0);
  EXPECT_DOUBLE_EQ(account.core_energy(PhaseTag::kSolve), 15.0);
  EXPECT_DOUBLE_EQ(account.core_energy(PhaseTag::kCheckpoint), 2.0);
  EXPECT_DOUBLE_EQ(account.core_energy_total(), 17.0);
}

TEST(EnergyAccountTest, TotalsIncludeNodeConstant) {
  EnergyAccount account;
  account.charge_core(PhaseTag::kSolve, 1.0);
  account.charge_node_constant(4.0);
  EXPECT_DOUBLE_EQ(account.total(), 5.0);
  EXPECT_DOUBLE_EQ(account.node_constant_energy(), 4.0);
}

TEST(EnergyAccountTest, ResilienceEnergyExcludesSolveAndComm) {
  EnergyAccount account;
  account.charge_core(PhaseTag::kSolve, 10.0);
  account.charge_core(PhaseTag::kComm, 3.0);
  account.charge_core(PhaseTag::kExtraIter, 1.0);
  account.charge_core(PhaseTag::kCheckpoint, 2.0);
  account.charge_core(PhaseTag::kRollback, 4.0);
  account.charge_core(PhaseTag::kReconstruct, 8.0);
  account.charge_core(PhaseTag::kIdleWait, 16.0);
  EXPECT_DOUBLE_EQ(account.resilience_energy(), 31.0);
}

TEST(EnergyAccountTest, RejectsNegativeCharge) {
  EnergyAccount account;
  EXPECT_THROW(account.charge_core(PhaseTag::kSolve, -1.0), Error);
  EXPECT_THROW(account.charge_node_constant(-1.0), Error);
}

TEST(EnergyAccountTest, MergeAddsEverything) {
  EnergyAccount a, b;
  a.charge_core(PhaseTag::kSolve, 1.0);
  b.charge_core(PhaseTag::kSolve, 2.0);
  b.charge_node_constant(3.0);
  a.merge(b);
  EXPECT_DOUBLE_EQ(a.core_energy(PhaseTag::kSolve), 3.0);
  EXPECT_DOUBLE_EQ(a.node_constant_energy(), 3.0);
}

TEST(PhaseTagTest, NamesAreDistinct) {
  EXPECT_STREQ(to_string(PhaseTag::kSolve), "solve");
  EXPECT_STREQ(to_string(PhaseTag::kReconstruct), "reconstruct");
  EXPECT_STREQ(to_string(PhaseTag::kCheckpoint), "checkpoint");
  EXPECT_STREQ(to_string(PhaseTag::kIdleWait), "idle-wait");
}

}  // namespace
}  // namespace rsls::power
