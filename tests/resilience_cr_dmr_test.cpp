// Unit tests: checkpoint/restart and dual modular redundancy.

#include <gtest/gtest.h>

#include <cmath>

#include "core/error.hpp"
#include "dist/dist_matrix.hpp"
#include "resilience/checkpoint.hpp"
#include "resilience/dmr.hpp"
#include "resilience/fault.hpp"
#include "sparse/generators.hpp"
#include "sparse/roster.hpp"

namespace rsls::resilience {
namespace {

using power::PhaseTag;

struct Fixture {
  dist::DistMatrix a;
  RealVec b;
  RealVec x0;
  simrt::VirtualCluster cluster;

  explicit Fixture(Index parts = 4, Index replica = 1)
      : a(sparse::laplacian_1d(64), parts),
        b(sparse::make_rhs(a.global())),
        x0(64, 0.0),
        cluster(simrt::paper_node(), parts, replica) {}

  RecoveryContext ctx() { return RecoveryContext{a, b, cluster}; }
};

CheckpointRestart make_cr(CheckpointTarget target, Index interval,
                          const RealVec& x0) {
  CheckpointOptions options;
  options.target = target;
  options.interval_iterations = interval;
  return CheckpointRestart(options, x0);
}

TEST(CheckpointTest, TakesCheckpointOnCadence) {
  Fixture fixture;
  auto cr = make_cr(CheckpointTarget::kMemory, 10, fixture.x0);
  auto ctx = fixture.ctx();
  RealVec x(64, 1.0);
  for (Index k = 1; k <= 35; ++k) {
    cr.on_iteration(ctx, k, x);
  }
  EXPECT_EQ(cr.checkpoints_taken(), 3);  // at 10, 20, 30
  EXPECT_GT(cr.checkpoint_seconds_total(), 0.0);
}

TEST(CheckpointTest, RollbackRestoresCheckpointedState) {
  Fixture fixture;
  auto cr = make_cr(CheckpointTarget::kMemory, 10, fixture.x0);
  auto ctx = fixture.ctx();
  RealVec x(64, 5.0);
  cr.on_iteration(ctx, 10, x);  // checkpoint the all-5 state
  std::fill(x.begin(), x.end(), 9.0);
  FaultInjector::corrupt_block(fixture.a.partition(), 1, x);
  const auto action = cr.recover(ctx, 17, 1, x);
  EXPECT_EQ(action, solver::HookAction::kRestart);
  // Global rollback: the entire iterate reverts, not just the lost block.
  for (const Real v : x) {
    EXPECT_DOUBLE_EQ(v, 5.0);
  }
  EXPECT_EQ(cr.iterations_rolled_back(), 7);
}

TEST(CheckpointTest, FaultBeforeFirstCheckpointRestartsFromInitialGuess) {
  Fixture fixture;
  RealVec guess(64, 0.5);
  auto cr = make_cr(CheckpointTarget::kDisk, 100, guess);
  auto ctx = fixture.ctx();
  RealVec x(64, 3.0);
  FaultInjector::corrupt_block(fixture.a.partition(), 0, x);
  cr.recover(ctx, 42, 0, x);
  for (const Real v : x) {
    EXPECT_DOUBLE_EQ(v, 0.5);
  }
  EXPECT_EQ(cr.iterations_rolled_back(), 42);
}

TEST(CheckpointTest, DiskCostsMoreThanMemory) {
  Fixture disk_fixture, mem_fixture;
  auto disk = make_cr(CheckpointTarget::kDisk, 10, disk_fixture.x0);
  auto mem = make_cr(CheckpointTarget::kMemory, 10, mem_fixture.x0);
  auto disk_ctx = disk_fixture.ctx();
  auto mem_ctx = mem_fixture.ctx();
  RealVec x(64, 1.0);
  disk.on_iteration(disk_ctx, 10, x);
  mem.on_iteration(mem_ctx, 10, x);
  // On this tiny fixture both costs are latency-bound, so the gap is
  // modest; the bandwidth term widens it on real vectors.
  EXPECT_GT(disk.mean_checkpoint_seconds(), mem.mean_checkpoint_seconds());
}

TEST(CheckpointTest, CheckpointPhaseTagged) {
  Fixture fixture;
  auto cr = make_cr(CheckpointTarget::kDisk, 5, fixture.x0);
  auto ctx = fixture.ctx();
  RealVec x(64, 1.0);
  cr.on_iteration(ctx, 5, x);
  EXPECT_GT(fixture.cluster.energy().core_energy(PhaseTag::kCheckpoint),
            0.0);
  FaultInjector::corrupt_block(fixture.a.partition(), 0, x);
  cr.recover(ctx, 7, 0, x);
  EXPECT_GT(fixture.cluster.energy().core_energy(PhaseTag::kRollback), 0.0);
}

TEST(CheckpointTest, NamesFollowTarget) {
  EXPECT_EQ(make_cr(CheckpointTarget::kDisk, 1, RealVec(4)).name(), "CR-D");
  EXPECT_EQ(make_cr(CheckpointTarget::kMemory, 1, RealVec(4)).name(), "CR-M");
}

TEST(CheckpointTest, RejectsZeroInterval) {
  CheckpointOptions options;
  options.interval_iterations = 0;
  EXPECT_THROW(CheckpointRestart(options, RealVec(4)), Error);
}

TEST(CheckpointTest, NoCheckpointOffCadence) {
  Fixture fixture;
  auto cr = make_cr(CheckpointTarget::kMemory, 100, fixture.x0);
  auto ctx = fixture.ctx();
  RealVec x(64, 1.0);
  for (Index k = 1; k <= 99; ++k) {
    cr.on_iteration(ctx, k, x);
  }
  EXPECT_EQ(cr.checkpoints_taken(), 0);
  EXPECT_DOUBLE_EQ(fixture.cluster.elapsed(), 0.0);
}

TEST(DmrTest, ReplicaFactorIsTwo) {
  Dmr dmr;
  EXPECT_EQ(dmr.replica_factor(), 2);
  EXPECT_EQ(dmr.name(), "RD");
}

TEST(DmrTest, RecoversExactlyFromReplica) {
  Fixture fixture(4, 2);
  Dmr dmr;
  auto ctx = fixture.ctx();
  RealVec x(64);
  for (std::size_t i = 0; i < x.size(); ++i) {
    x[i] = static_cast<double>(i) * 0.5;
  }
  dmr.on_iteration(ctx, 1, x);  // replica tracks the state
  const RealVec pristine = x;
  FaultInjector::corrupt_block(fixture.a.partition(), 2, x);
  const auto action = dmr.recover(ctx, 1, 2, x);
  // Exact recovery, no restart needed.
  EXPECT_EQ(action, solver::HookAction::kContinue);
  EXPECT_EQ(x, pristine);
}

TEST(DmrTest, FaultBeforeReplicationIsFatal) {
  Fixture fixture(4, 2);
  Dmr dmr;
  auto ctx = fixture.ctx();
  RealVec x(64, 1.0);
  EXPECT_THROW(dmr.recover(ctx, 1, 0, x), Error);
}

TEST(DmrTest, RecoveryChargesTransfer) {
  Fixture fixture(4, 2);
  Dmr dmr;
  auto ctx = fixture.ctx();
  RealVec x(64, 1.0);
  dmr.on_iteration(ctx, 1, x);
  FaultInjector::corrupt_block(fixture.a.partition(), 1, x);
  dmr.recover(ctx, 1, 1, x);
  // The block transfer took network time on the failed rank.
  EXPECT_GT(fixture.cluster.elapsed(), 0.0);
  EXPECT_GT(fixture.cluster.energy().core_energy(PhaseTag::kReconstruct),
            0.0);
}

}  // namespace
}  // namespace rsls::resilience
