// Unit tests: COO assembly and CSR kernels, checked against dense
// reference computations.

#include <gtest/gtest.h>

#include <cmath>

#include "core/error.hpp"
#include "sparse/coo.hpp"
#include "sparse/csr.hpp"
#include "sparse/dense.hpp"

namespace rsls::sparse {
namespace {

Csr small_matrix() {
  // [ 4 -1  0 ]
  // [-1  4 -2 ]
  // [ 0 -2  4 ]
  CooBuilder b(3, 3);
  b.add(0, 0, 4.0);
  b.add_symmetric(0, 1, -1.0);
  b.add(1, 1, 4.0);
  b.add_symmetric(1, 2, -2.0);
  b.add(2, 2, 4.0);
  return b.to_csr();
}

TEST(CooTest, BuildsSortedCsr) {
  CooBuilder b(2, 3);
  b.add(1, 2, 3.0);
  b.add(0, 1, 1.0);
  b.add(1, 0, 2.0);
  const Csr a = b.to_csr();
  EXPECT_EQ(a.rows, 2);
  EXPECT_EQ(a.cols, 3);
  EXPECT_EQ(a.nnz(), 3);
  EXPECT_DOUBLE_EQ(a.at(0, 1), 1.0);
  EXPECT_DOUBLE_EQ(a.at(1, 0), 2.0);
  EXPECT_DOUBLE_EQ(a.at(1, 2), 3.0);
}

TEST(CooTest, SumsDuplicates) {
  CooBuilder b(1, 1);
  b.add(0, 0, 1.5);
  b.add(0, 0, 2.5);
  const Csr a = b.to_csr();
  EXPECT_EQ(a.nnz(), 1);
  EXPECT_DOUBLE_EQ(a.at(0, 0), 4.0);
}

TEST(CooTest, DropsExplicitZeros) {
  CooBuilder b(2, 2);
  b.add(0, 0, 1.0);
  b.add(0, 1, 2.0);
  b.add(0, 1, -2.0);  // cancels
  const Csr a = b.to_csr();
  EXPECT_EQ(a.nnz(), 1);
}

TEST(CooTest, BoundsChecked) {
  CooBuilder b(2, 2);
  EXPECT_THROW(b.add(2, 0, 1.0), Error);
  EXPECT_THROW(b.add(0, -1, 1.0), Error);
}

TEST(CooTest, AddSymmetricOnDiagonalOnce) {
  CooBuilder b(2, 2);
  b.add_symmetric(1, 1, 3.0);
  const Csr a = b.to_csr();
  EXPECT_DOUBLE_EQ(a.at(1, 1), 3.0);
}

TEST(CooTest, TripletCount) {
  CooBuilder b(3, 3);
  EXPECT_EQ(b.triplet_count(), 0);
  b.add_symmetric(0, 1, 1.0);
  EXPECT_EQ(b.triplet_count(), 2);
}

TEST(CsrTest, ValidateAcceptsWellFormed) {
  EXPECT_NO_THROW(validate(small_matrix()));
}

TEST(CsrTest, ValidateRejectsBadRowPtr) {
  Csr a = small_matrix();
  a.row_ptr.back() = 99;
  EXPECT_THROW(validate(a), Error);
}

TEST(CsrTest, ValidateRejectsOutOfRangeColumn) {
  Csr a = small_matrix();
  a.col_idx[0] = 5;
  EXPECT_THROW(validate(a), Error);
}

TEST(CsrTest, ValidateRejectsUnsortedColumns) {
  CooBuilder b(1, 3);
  b.add(0, 0, 1.0);
  b.add(0, 2, 1.0);
  Csr a = b.to_csr();
  std::swap(a.col_idx[0], a.col_idx[1]);
  EXPECT_THROW(validate(a), Error);
}

TEST(CsrTest, AtReturnsZeroForMissing) {
  const Csr a = small_matrix();
  EXPECT_DOUBLE_EQ(a.at(0, 2), 0.0);
  EXPECT_DOUBLE_EQ(a.at(0, 0), 4.0);
}

TEST(CsrTest, SpmvMatchesDense) {
  const Csr a = small_matrix();
  const Dense d = to_dense(a);
  const RealVec x = {1.0, 2.0, 3.0};
  RealVec y_sparse(3), y_dense(3);
  spmv(a, x, y_sparse);
  d.multiply(x, y_dense);
  for (int i = 0; i < 3; ++i) {
    EXPECT_DOUBLE_EQ(y_sparse[static_cast<std::size_t>(i)],
                     y_dense[static_cast<std::size_t>(i)]);
  }
}

TEST(CsrTest, SpmvKnownResult) {
  const Csr a = small_matrix();
  const RealVec x = {1.0, 1.0, 1.0};
  RealVec y(3);
  spmv(a, x, y);
  EXPECT_DOUBLE_EQ(y[0], 3.0);
  EXPECT_DOUBLE_EQ(y[1], 1.0);
  EXPECT_DOUBLE_EQ(y[2], 2.0);
}

TEST(CsrTest, SpmvAddAccumulates) {
  const Csr a = small_matrix();
  const RealVec x = {1.0, 1.0, 1.0};
  RealVec y = {10.0, 10.0, 10.0};
  spmv_add(a, 2.0, x, y);
  EXPECT_DOUBLE_EQ(y[0], 16.0);
  EXPECT_DOUBLE_EQ(y[1], 12.0);
  EXPECT_DOUBLE_EQ(y[2], 14.0);
}

TEST(CsrTest, SpmvTransposeMatchesExplicitTranspose) {
  CooBuilder b(2, 3);
  b.add(0, 0, 1.0);
  b.add(0, 2, 2.0);
  b.add(1, 1, 3.0);
  const Csr a = b.to_csr();
  const Csr at = transpose(a);
  const RealVec x = {5.0, 7.0};
  RealVec y1(3), y2(3);
  spmv_transpose(a, x, y1);
  spmv(at, x, y2);
  for (int i = 0; i < 3; ++i) {
    EXPECT_DOUBLE_EQ(y1[static_cast<std::size_t>(i)],
                     y2[static_cast<std::size_t>(i)]);
  }
}

TEST(CsrTest, TransposeTwiceIsIdentity) {
  const Csr a = small_matrix();
  const Csr att = transpose(transpose(a));
  EXPECT_EQ(att.row_ptr, a.row_ptr);
  EXPECT_EQ(att.col_idx, a.col_idx);
  EXPECT_EQ(att.values, a.values);
}

TEST(CsrTest, ExtractBlockRebasesIndices) {
  const Csr a = small_matrix();
  const Csr block = extract_block(a, 1, 3, 1, 3);
  EXPECT_EQ(block.rows, 2);
  EXPECT_EQ(block.cols, 2);
  EXPECT_DOUBLE_EQ(block.at(0, 0), 4.0);
  EXPECT_DOUBLE_EQ(block.at(0, 1), -2.0);
  EXPECT_DOUBLE_EQ(block.at(1, 1), 4.0);
}

TEST(CsrTest, ExtractRowsKeepsGlobalColumns) {
  const Csr a = small_matrix();
  const Csr rows = extract_rows(a, 1, 2);
  EXPECT_EQ(rows.rows, 1);
  EXPECT_EQ(rows.cols, 3);
  EXPECT_DOUBLE_EQ(rows.at(0, 0), -1.0);
  EXPECT_DOUBLE_EQ(rows.at(0, 1), 4.0);
  EXPECT_DOUBLE_EQ(rows.at(0, 2), -2.0);
}

TEST(CsrTest, ExtractBlockBoundsChecked) {
  const Csr a = small_matrix();
  EXPECT_THROW(extract_block(a, 0, 4, 0, 3), Error);
  EXPECT_THROW(extract_block(a, 2, 1, 0, 3), Error);
}

TEST(CsrTest, Diagonal) {
  const RealVec d = diagonal(small_matrix());
  EXPECT_EQ(d.size(), 3u);
  for (const Real v : d) {
    EXPECT_DOUBLE_EQ(v, 4.0);
  }
}

TEST(CsrTest, IsSymmetricTrue) {
  EXPECT_TRUE(is_symmetric(small_matrix()));
}

TEST(CsrTest, IsSymmetricDetectsAsymmetry) {
  CooBuilder b(2, 2);
  b.add(0, 1, 1.0);
  b.add(1, 0, 2.0);
  EXPECT_FALSE(is_symmetric(b.to_csr()));
}

TEST(CsrTest, IsSymmetricRejectsNonSquare) {
  CooBuilder b(2, 3);
  b.add(0, 0, 1.0);
  EXPECT_FALSE(is_symmetric(b.to_csr()));
}

TEST(CsrTest, ResidualNormZeroForExactSolution) {
  const Csr a = small_matrix();
  const RealVec x = {1.0, 1.0, 1.0};
  RealVec b(3);
  spmv(a, x, b);
  EXPECT_NEAR(residual_norm(a, x, b), 0.0, 1e-14);
}

TEST(CsrTest, ResidualNormPositiveOtherwise) {
  const Csr a = small_matrix();
  const RealVec x = {0.0, 0.0, 0.0};
  const RealVec b = {1.0, 1.0, 1.0};
  EXPECT_NEAR(residual_norm(a, x, b), std::sqrt(3.0), 1e-14);
}

TEST(CsrTest, RowSpansConsistent) {
  const Csr a = small_matrix();
  EXPECT_EQ(a.row_cols(0).size(), 2u);
  EXPECT_EQ(a.row_vals(1).size(), 3u);
  EXPECT_EQ(a.row_cols(2).size(), 2u);
}

}  // namespace
}  // namespace rsls::sparse
