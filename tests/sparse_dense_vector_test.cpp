// Unit tests: dense matrix and BLAS-1 span kernels.

#include <gtest/gtest.h>

#include <cmath>

#include "core/error.hpp"
#include "sparse/coo.hpp"
#include "sparse/dense.hpp"
#include "sparse/vector_ops.hpp"

namespace rsls::sparse {
namespace {

TEST(DenseTest, ZeroInitialized) {
  const Dense m(2, 3);
  EXPECT_EQ(m.rows(), 2);
  EXPECT_EQ(m.cols(), 3);
  for (Index i = 0; i < 2; ++i) {
    for (Index j = 0; j < 3; ++j) {
      EXPECT_DOUBLE_EQ(m(i, j), 0.0);
    }
  }
}

TEST(DenseTest, ElementAccess) {
  Dense m(2, 2);
  m(0, 1) = 5.0;
  m(1, 0) = -3.0;
  EXPECT_DOUBLE_EQ(m(0, 1), 5.0);
  EXPECT_DOUBLE_EQ(m(1, 0), -3.0);
}

TEST(DenseTest, RowSpan) {
  Dense m(2, 3);
  m(1, 2) = 7.0;
  const auto row = m.row(1);
  EXPECT_EQ(row.size(), 3u);
  EXPECT_DOUBLE_EQ(row[2], 7.0);
}

TEST(DenseTest, Multiply) {
  Dense m(2, 2);
  m(0, 0) = 1.0;
  m(0, 1) = 2.0;
  m(1, 0) = 3.0;
  m(1, 1) = 4.0;
  const RealVec x = {1.0, 1.0};
  RealVec y(2);
  m.multiply(x, y);
  EXPECT_DOUBLE_EQ(y[0], 3.0);
  EXPECT_DOUBLE_EQ(y[1], 7.0);
}

TEST(DenseTest, MultiplyTranspose) {
  Dense m(2, 2);
  m(0, 0) = 1.0;
  m(0, 1) = 2.0;
  m(1, 0) = 3.0;
  m(1, 1) = 4.0;
  const RealVec x = {1.0, 1.0};
  RealVec y(2);
  m.multiply_transpose(x, y);
  EXPECT_DOUBLE_EQ(y[0], 4.0);
  EXPECT_DOUBLE_EQ(y[1], 6.0);
}

TEST(DenseTest, Identity) {
  const Dense eye = Dense::identity(3);
  const RealVec x = {1.0, 2.0, 3.0};
  RealVec y(3);
  eye.multiply(x, y);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_DOUBLE_EQ(y[i], x[i]);
  }
}

TEST(DenseTest, ToDenseMatchesCsr) {
  CooBuilder b(2, 2);
  b.add(0, 0, 1.5);
  b.add(1, 0, -2.5);
  const Dense m = to_dense(b.to_csr());
  EXPECT_DOUBLE_EQ(m(0, 0), 1.5);
  EXPECT_DOUBLE_EQ(m(0, 1), 0.0);
  EXPECT_DOUBLE_EQ(m(1, 0), -2.5);
}

TEST(DenseTest, MaxAbsDiff) {
  Dense a(1, 2), b(1, 2);
  a(0, 0) = 1.0;
  b(0, 0) = 1.5;
  b(0, 1) = -0.25;
  EXPECT_DOUBLE_EQ(max_abs_diff(a, b), 0.5);
}

TEST(DenseTest, MaxAbsDiffRejectsShapeMismatch) {
  const Dense a(1, 2);
  const Dense b(2, 1);
  EXPECT_THROW(max_abs_diff(a, b), Error);
}

TEST(VectorOpsTest, Axpy) {
  const RealVec x = {1.0, 2.0};
  RealVec y = {10.0, 20.0};
  axpy(2.0, x, y);
  EXPECT_DOUBLE_EQ(y[0], 12.0);
  EXPECT_DOUBLE_EQ(y[1], 24.0);
}

TEST(VectorOpsTest, Xpby) {
  const RealVec x = {1.0, 2.0};
  RealVec y = {10.0, 20.0};
  xpby(x, 0.5, y);
  EXPECT_DOUBLE_EQ(y[0], 6.0);
  EXPECT_DOUBLE_EQ(y[1], 12.0);
}

TEST(VectorOpsTest, Scale) {
  RealVec x = {2.0, -4.0};
  scale(0.5, x);
  EXPECT_DOUBLE_EQ(x[0], 1.0);
  EXPECT_DOUBLE_EQ(x[1], -2.0);
}

TEST(VectorOpsTest, CopyAndFill) {
  const RealVec src = {1.0, 2.0, 3.0};
  RealVec dst(3);
  copy(src, dst);
  EXPECT_EQ(dst, src);
  fill(dst, 9.0);
  for (const Real v : dst) {
    EXPECT_DOUBLE_EQ(v, 9.0);
  }
}

TEST(VectorOpsTest, DotAndNorms) {
  const RealVec x = {3.0, 4.0};
  const RealVec y = {1.0, 1.0};
  EXPECT_DOUBLE_EQ(dot(x, y), 7.0);
  EXPECT_DOUBLE_EQ(norm2(x), 5.0);
  EXPECT_DOUBLE_EQ(norm_inf(x), 4.0);
}

TEST(VectorOpsTest, SizeMismatchThrows) {
  const RealVec x = {1.0};
  RealVec y = {1.0, 2.0};
  EXPECT_THROW(axpy(1.0, x, y), Error);
  EXPECT_THROW(dot(x, y), Error);
  EXPECT_THROW(copy(x, y), Error);
}

TEST(VectorOpsTest, EmptyVectorsAreFine) {
  const RealVec x;
  RealVec y;
  EXPECT_NO_THROW(axpy(1.0, x, y));
  EXPECT_DOUBLE_EQ(dot(x, x), 0.0);
  EXPECT_DOUBLE_EQ(norm2(x), 0.0);
  EXPECT_DOUBLE_EQ(norm_inf(x), 0.0);
}

}  // namespace
}  // namespace rsls::sparse
