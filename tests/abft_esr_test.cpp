// Integration tests: the ABFT recovery family under the paper's LNF
// multi-rank fault class. ESR must continue the fault-free trajectory
// exactly (zero extra iterations, no residual spike) for up to m
// concurrent losses, escalate gracefully beyond m, and bill a nonzero
// kEncode bucket that still sums into the exact energy decomposition.
// ABFT-CR must survive concurrent loss of its own snapshot shares.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <string>

#include "abft/encoded_checkpoint.hpp"
#include "abft/esr.hpp"
#include "harness/experiment.hpp"
#include "harness/scheme_factory.hpp"
#include "obs/json.hpp"
#include "resilience/resilient_solve.hpp"
#include "sparse/generators.hpp"
#include "sparse/roster.hpp"
#include "unistd.h"

namespace rsls::abft {
namespace {

using power::PhaseTag;
using resilience::FaultInjector;
using solver::CgOptions;

struct LnfSetup {
  dist::DistMatrix a;
  RealVec b;
  RealVec x0;

  explicit LnfSetup(Index n = 128, Index parts = 8)
      : a(sparse::banded_spd({n, 3, 1.0, 0.05, 0.0, 21}), parts),
        b(sparse::make_rhs(a.global())),
        x0(static_cast<std::size_t>(n), 0.0) {}
};

CgOptions tight_options() {
  CgOptions options;
  options.tolerance = 1e-12;
  options.record_residual_history = true;
  return options;
}

solver::CgResult fault_free(const LnfSetup& setup) {
  simrt::VirtualCluster cluster(simrt::paper_node(), 8);
  RealVec x = setup.x0;
  return solver::cg_solve(setup.a, cluster, setup.b, x, tight_options());
}

/// Upward jumps in a residual history (relative growth beyond roundoff);
/// an exact recovery must not add any over the fault-free run.
Index residual_jumps(const RealVec& history) {
  Index jumps = 0;
  for (std::size_t i = 1; i < history.size(); ++i) {
    if (history[i] > history[i - 1] * 1.01) {
      ++jumps;
    }
  }
  return jumps;
}

TEST(EsrSchemeTest, TwoConcurrentLossesReconstructExactly) {
  const LnfSetup setup;
  const solver::CgResult ff = fault_free(setup);
  ASSERT_TRUE(ff.converged);

  simrt::VirtualCluster cluster(simrt::paper_node(), 8);
  auto injector = FaultInjector::evenly_spaced_multi(
      2, ff.iterations, /*ranks_per_fault=*/2, /*num_ranks=*/8, 99);
  EsrScheme scheme(EsrOptions{.parity_blocks = 2});
  RealVec x = setup.x0;
  const auto report = resilient_solve(setup.a, cluster, setup.b, x, scheme,
                                      injector, tight_options());

  // Exact state reconstruction: the solve continues on the fault-free
  // trajectory — zero extra iterations, zero rollback.
  EXPECT_TRUE(report.cg.converged);
  EXPECT_EQ(report.cg.iterations, ff.iterations);
  EXPECT_LE(report.true_relative_residual, 1e-11);
  EXPECT_EQ(scheme.decodes(), 2);
  EXPECT_EQ(scheme.fallbacks(), 0);
  EXPECT_EQ(report.recoveries, 2);

  // The residual history continues monotonically: no new upward jump
  // appears at the fault iterations.
  EXPECT_EQ(residual_jumps(report.cg.residual_history),
            residual_jumps(ff.residual_history));

  // Parity maintenance was charged, under its own phase.
  EXPECT_GT(scheme.encodes(), 0);
  EXPECT_GT(scheme.encode_seconds_total(), 0.0);
  EXPECT_GT(scheme.decode_seconds_total(), 0.0);
  EXPECT_GT(report.account.core_energy(PhaseTag::kEncode), 0.0);
}

TEST(EsrSchemeTest, SingleLossReconstructsExactly) {
  const LnfSetup setup;
  const solver::CgResult ff = fault_free(setup);

  simrt::VirtualCluster cluster(simrt::paper_node(), 8);
  auto injector = FaultInjector::evenly_spaced(3, ff.iterations, 8, 5);
  EsrScheme scheme(EsrOptions{.parity_blocks = 2});
  RealVec x = setup.x0;
  const auto report = resilient_solve(setup.a, cluster, setup.b, x, scheme,
                                      injector, tight_options());
  EXPECT_TRUE(report.cg.converged);
  EXPECT_EQ(report.cg.iterations, ff.iterations);
  EXPECT_EQ(scheme.decodes(), 3);
  EXPECT_EQ(scheme.fallbacks(), 0);
}

TEST(EsrSchemeTest, CrMRollsBackWhereEsrDoesNot) {
  const LnfSetup setup;
  const solver::CgResult ff = fault_free(setup);

  simrt::VirtualCluster cluster(simrt::paper_node(), 8);
  auto injector = FaultInjector::evenly_spaced_multi(2, ff.iterations, 2, 8,
                                                     99);
  harness::SchemeFactoryConfig factory;
  factory.cr_interval_iterations = 50;
  const auto crm = harness::make_scheme("CR-M", factory, setup.x0);
  RealVec x = setup.x0;
  const auto report = resilient_solve(setup.a, cluster, setup.b, x, *crm,
                                      injector, tight_options());
  EXPECT_TRUE(report.cg.converged);
  // The same fault plan costs CR-M re-iterated progress.
  EXPECT_GT(report.cg.iterations, ff.iterations);
}

TEST(EsrSchemeTest, LossesBeyondParityEscalateAndStillConverge) {
  const LnfSetup setup;
  const solver::CgResult ff = fault_free(setup);

  simrt::VirtualCluster cluster(simrt::paper_node(), 8);
  // 3 concurrent losses against m = 2 parity blocks: the code cannot
  // cover the event; ESR must fall back (zero-fill + restart) and the
  // solve must still reach the paper's tolerance.
  auto injector = FaultInjector::evenly_spaced_multi(1, ff.iterations, 3, 8,
                                                     17);
  EsrScheme scheme(EsrOptions{.parity_blocks = 2});
  RealVec x = setup.x0;
  const auto report = resilient_solve(setup.a, cluster, setup.b, x, scheme,
                                      injector, tight_options());
  EXPECT_TRUE(report.cg.converged);
  EXPECT_LE(report.true_relative_residual, 1e-11);
  EXPECT_EQ(scheme.fallbacks(), 1);
  EXPECT_EQ(scheme.decodes(), 0);
}

TEST(EsrSchemeTest, ForwardRecoveryBeyondCapabilityAlsoConverges) {
  // The satellite contrast: 6 of 8 ranks lost at once exceeds what
  // interpolation can usefully reconstruct from surviving neighbours —
  // recovery degrades to masked guesses — yet the escalated restart
  // must still converge to 1e-12.
  const LnfSetup setup;
  const solver::CgResult ff = fault_free(setup);
  for (const std::string name : {"LI", "FI"}) {
    simrt::VirtualCluster cluster(simrt::paper_node(), 8);
    auto injector = FaultInjector::evenly_spaced_multi(1, ff.iterations, 6, 8,
                                                       23);
    harness::SchemeFactoryConfig factory;
    const auto scheme = harness::make_scheme(name, factory, setup.x0);
    RealVec x = setup.x0;
    const auto report = resilient_solve(setup.a, cluster, setup.b, x, *scheme,
                                        injector, tight_options());
    EXPECT_TRUE(report.cg.converged) << name;
    EXPECT_LE(report.true_relative_residual, 1e-11) << name;
  }
}

TEST(EsrSchemeTest, FaultBeforeFirstEncodeFallsBack) {
  const LnfSetup setup;
  simrt::VirtualCluster cluster(simrt::paper_node(), 8);
  EsrScheme scheme(EsrOptions{.parity_blocks = 2});
  resilience::RecoveryContext ctx{setup.a, setup.b, cluster};
  RealVec x(128, 1.0);
  FaultInjector::corrupt_block(setup.a.partition(), 4, x);
  // recover() before any on_iteration: no parity exists yet.
  const auto action = scheme.recover(ctx, 0, 4, std::span<Real>(x));
  EXPECT_EQ(action, solver::HookAction::kRestart);
  EXPECT_EQ(scheme.fallbacks(), 1);
  for (const Real v : x) {
    EXPECT_TRUE(std::isfinite(v));
  }
}

TEST(EncodedCheckpointTest, SurvivesConcurrentLossOfSnapshotShares) {
  const LnfSetup setup;
  const solver::CgResult ff = fault_free(setup);

  simrt::VirtualCluster cluster(simrt::paper_node(), 8);
  auto injector = FaultInjector::evenly_spaced_multi(2, ff.iterations, 2, 8,
                                                     99);
  EncodedCheckpointOptions options;
  options.interval_iterations = 7;
  options.parity_blocks = 2;
  EncodedCheckpoint scheme(options, setup.x0);
  RealVec x = setup.x0;
  const auto report = resilient_solve(setup.a, cluster, setup.b, x, scheme,
                                      injector, tight_options());
  EXPECT_TRUE(report.cg.converged);
  EXPECT_LE(report.true_relative_residual, 1e-11);
  // Each 2-rank event killed 2 snapshot shares; both were reconstructed
  // from parity instead of being lost like CR-M's node-local copies.
  EXPECT_EQ(scheme.shares_decoded(), 4);
  EXPECT_EQ(scheme.snapshot_losses(), 0);
  EXPECT_GT(scheme.iterations_rolled_back(), 0);
  EXPECT_GT(report.account.core_energy(PhaseTag::kEncode), 0.0);
}

TEST(EncodedCheckpointTest, BeyondParityRestartsFromInitialGuess) {
  const LnfSetup setup;
  const solver::CgResult ff = fault_free(setup);

  simrt::VirtualCluster cluster(simrt::paper_node(), 8);
  auto injector = FaultInjector::evenly_spaced_multi(1, ff.iterations, 3, 8,
                                                     31);
  EncodedCheckpointOptions options;
  options.interval_iterations = 25;
  options.parity_blocks = 2;
  EncodedCheckpoint scheme(options, setup.x0);
  RealVec x = setup.x0;
  const auto report = resilient_solve(setup.a, cluster, setup.b, x, scheme,
                                      injector, tight_options());
  EXPECT_TRUE(report.cg.converged);
  EXPECT_LE(report.true_relative_residual, 1e-11);
  EXPECT_EQ(scheme.snapshot_losses(), 1);
}

TEST(EncodedCheckpointTest, RollbackRestoresSnapshotWithoutDecode) {
  const LnfSetup setup;
  simrt::VirtualCluster cluster(simrt::paper_node(), 8);
  EncodedCheckpointOptions options;
  options.interval_iterations = 1;
  EncodedCheckpoint scheme(options, setup.x0);
  resilience::RecoveryContext ctx{setup.a, setup.b, cluster};
  RealVec snapshot(128, 2.5);
  scheme.on_iteration(ctx, 1, snapshot);
  RealVec x(128, -1.0);
  EXPECT_TRUE(scheme.rollback(ctx, 5, std::span<Real>(x)));
  for (const Real v : x) {
    EXPECT_DOUBLE_EQ(v, 2.5);
  }
  EXPECT_EQ(scheme.shares_decoded(), 0);
}

TEST(AbftRunReportTest, EncodeBucketNonzeroAndSumsToTotal) {
  const std::string path =
      "abft_runreport_" + std::to_string(::getpid()) + ".jsonl";
  harness::ExperimentConfig config;
  config.processes = 8;
  config.faults = 2;
  config.observability.enabled = true;
  config.observability.report_path = path;

  const auto workload = harness::Workload::create(
      sparse::banded_spd({128, 3, 1.0, 0.05, 0.0, 21}), 8, "abft_test");
  const auto ff = harness::run_fault_free(workload, config);
  const auto run = harness::run_scheme(workload, "ESR", config, ff);
  EXPECT_TRUE(run.report.cg.converged);

  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string line;
  ASSERT_TRUE(std::getline(in, line));
  const obs::JsonValue report = obs::parse_json(line);
  const auto& energy = report.at("energy");
  const auto& phases = energy.at("phases").as_object();
  ASSERT_TRUE(phases.contains("encode"));
  EXPECT_GT(phases.at("encode").as_number(), 0.0);
  double sum = energy.at("node_constant").as_number() +
               energy.at("core_sleep").as_number();
  for (const auto& [tag, joules] : phases) {
    sum += joules.as_number();
  }
  const double total = energy.at("total").as_number();
  ASSERT_GT(total, 0.0);
  EXPECT_NEAR(sum / total, 1.0, 1e-9);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace rsls::abft
