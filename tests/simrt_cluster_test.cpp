// Unit tests: the virtual cluster — clock arithmetic, energy integration
// against closed forms, communication/storage models, DVFS, replicas.

#include <gtest/gtest.h>

#include <cmath>

#include "core/error.hpp"
#include "simrt/cluster.hpp"

namespace rsls::simrt {
namespace {

using power::Activity;
using power::PhaseTag;

MachineConfig tiny_machine() {
  MachineConfig config = paper_cluster();
  config.nodes = 2;
  return config;
}

TEST(MachineTest, PresetsValid) {
  EXPECT_NO_THROW(validate(paper_cluster()));
  EXPECT_NO_THROW(validate(paper_node()));
  EXPECT_EQ(paper_cluster().total_cores(), 192);
  EXPECT_EQ(paper_node().total_cores(), 24);
}

TEST(MachineTest, ValidateRejectsNonsense) {
  MachineConfig config = paper_cluster();
  config.nodes = 0;
  EXPECT_THROW(validate(config), Error);
  config = paper_cluster();
  config.net_bandwidth = 0.0;
  EXPECT_THROW(validate(config), Error);
  config = paper_cluster();
  config.flops_per_cycle = -1.0;
  EXPECT_THROW(validate(config), Error);
}

TEST(ClusterTest, RanksMustFitCores) {
  EXPECT_THROW(VirtualCluster(paper_node(), 25), Error);
  EXPECT_NO_THROW(VirtualCluster(paper_node(), 24));
  EXPECT_THROW(VirtualCluster(paper_node(), 0), Error);
}

TEST(ClusterTest, NodePlacement) {
  VirtualCluster cluster(tiny_machine(), 30);
  EXPECT_EQ(cluster.node_of(0), 0);
  EXPECT_EQ(cluster.node_of(23), 0);
  EXPECT_EQ(cluster.node_of(24), 1);
  EXPECT_EQ(cluster.nodes_used(), 2);
}

TEST(ClusterTest, ComputeSecondsClosedForm) {
  VirtualCluster cluster(tiny_machine(), 4);
  const MachineConfig& config = cluster.config();
  const double flops = 1e9;
  const Seconds expected =
      flops / (config.flops_per_cycle * config.power.freq.max_hz);
  EXPECT_DOUBLE_EQ(cluster.compute_seconds(0, flops), expected);
}

TEST(ClusterTest, ChargeAdvancesOnlyThatRank) {
  VirtualCluster cluster(tiny_machine(), 4);
  cluster.charge_compute(1, 1e9, PhaseTag::kSolve);
  EXPECT_GT(cluster.now(1), 0.0);
  EXPECT_DOUBLE_EQ(cluster.now(0), 0.0);
  EXPECT_DOUBLE_EQ(cluster.elapsed(), cluster.now(1));
}

TEST(ClusterTest, EnergyMatchesPowerTimesTime) {
  VirtualCluster cluster(tiny_machine(), 1);
  const Seconds duration = 2.0;
  cluster.charge_duration(0, duration, Activity::kActive, PhaseTag::kSolve);
  const Watts p_active = cluster.power_model().core_power(
      cluster.config().power.freq.max_hz, Activity::kActive);
  EXPECT_NEAR(cluster.energy().core_energy(PhaseTag::kSolve),
              p_active * duration, 1e-9);
}

TEST(ClusterTest, SyncBringsAllClocksToMax) {
  VirtualCluster cluster(tiny_machine(), 3);
  cluster.charge_duration(2, 1.0, Activity::kActive, PhaseTag::kSolve);
  cluster.sync();
  for (Index r = 0; r < 3; ++r) {
    EXPECT_DOUBLE_EQ(cluster.now(r), 1.0);
  }
  // Waiting ranks were charged at busy-poll power under kComm.
  EXPECT_GT(cluster.energy().core_energy(PhaseTag::kComm), 0.0);
}

TEST(ClusterTest, AllreduceFormula) {
  VirtualCluster cluster(tiny_machine(), 16);
  const MachineConfig& config = cluster.config();
  const Seconds expected =
      4.0 * (config.net_latency + 8.0 / config.net_bandwidth);
  EXPECT_DOUBLE_EQ(cluster.allreduce_seconds(8.0), expected);
}

TEST(ClusterTest, AllreduceSynchronizes) {
  VirtualCluster cluster(tiny_machine(), 4);
  cluster.charge_duration(0, 1.0, Activity::kActive, PhaseTag::kSolve);
  cluster.allreduce(8.0, PhaseTag::kComm);
  const Seconds expected = 1.0 + cluster.allreduce_seconds(8.0);
  for (Index r = 0; r < 4; ++r) {
    EXPECT_DOUBLE_EQ(cluster.now(r), expected);
  }
}

TEST(ClusterTest, PointToPointRendezvous) {
  VirtualCluster cluster(tiny_machine(), 4);
  cluster.charge_duration(1, 0.5, Activity::kActive, PhaseTag::kSolve);
  cluster.point_to_point(0, 1, 1000.0, PhaseTag::kComm);
  const Seconds expected = 0.5 + cluster.p2p_seconds(1000.0);
  EXPECT_DOUBLE_EQ(cluster.now(0), expected);
  EXPECT_DOUBLE_EQ(cluster.now(1), expected);
  EXPECT_DOUBLE_EQ(cluster.now(2), 0.0);  // uninvolved
}

TEST(ClusterTest, HaloExchangeChargesPerRank) {
  VirtualCluster cluster(tiny_machine(), 2);
  const std::vector<Bytes> bytes = {800.0, 0.0};
  const IndexVec msgs = {2, 0};
  cluster.halo_exchange(bytes, msgs, PhaseTag::kComm);
  const MachineConfig& config = cluster.config();
  EXPECT_DOUBLE_EQ(cluster.now(0), 2.0 * config.net_latency +
                                       800.0 / config.net_bandwidth);
  EXPECT_DOUBLE_EQ(cluster.now(1), 0.0);
}

TEST(ClusterTest, DiskIsSharedMemoryIsPerNode) {
  // Same bytes: disk time is machine-wide, memory splits across nodes.
  VirtualCluster disk_cluster(tiny_machine(), 48);
  VirtualCluster mem_cluster(tiny_machine(), 48);
  const Bytes bytes = 1e8;
  disk_cluster.write_disk(bytes, PhaseTag::kCheckpoint);
  mem_cluster.write_memory(bytes, PhaseTag::kCheckpoint);
  const MachineConfig& config = disk_cluster.config();
  EXPECT_DOUBLE_EQ(disk_cluster.elapsed(),
                   config.disk_latency + bytes / config.disk_bandwidth);
  EXPECT_DOUBLE_EQ(mem_cluster.elapsed(),
                   config.mem_latency + bytes / 2.0 / config.mem_bandwidth);
}

TEST(ClusterTest, ReadCostsMatchWrites) {
  VirtualCluster a(tiny_machine(), 4);
  VirtualCluster b(tiny_machine(), 4);
  a.write_disk(1e6, PhaseTag::kCheckpoint);
  b.read_disk(1e6, PhaseTag::kRollback);
  EXPECT_DOUBLE_EQ(a.elapsed(), b.elapsed());
}

TEST(ClusterTest, SetFrequencySnapsAndCharges) {
  VirtualCluster cluster(tiny_machine(), 2);
  cluster.set_frequency(0, gigahertz(1.23));
  EXPECT_DOUBLE_EQ(cluster.frequency(0), gigahertz(1.2));
  // The transition stalled the core briefly.
  EXPECT_DOUBLE_EQ(cluster.now(0),
                   cluster.config().dvfs_transition_latency);
  // Setting the same frequency again is free.
  const Seconds before = cluster.now(0);
  cluster.set_frequency(0, gigahertz(1.2));
  EXPECT_DOUBLE_EQ(cluster.now(0), before);
}

TEST(ClusterTest, LowerFrequencySlowsCompute) {
  VirtualCluster cluster(tiny_machine(), 1);
  const Seconds fast = cluster.compute_seconds(0, 1e9);
  cluster.set_frequency(0, cluster.config().power.freq.min_hz);
  const Seconds slow = cluster.compute_seconds(0, 1e9);
  EXPECT_NEAR(slow / fast, 2.3 / 1.2, 1e-9);
}

TEST(ClusterTest, SetFrequencyAllExcept) {
  VirtualCluster cluster(tiny_machine(), 4);
  cluster.set_governor(power::make_userspace_governor());
  cluster.set_frequency_all_except(2, cluster.config().power.freq.min_hz);
  for (Index r = 0; r < 4; ++r) {
    if (r == 2) {
      EXPECT_DOUBLE_EQ(cluster.frequency(r),
                       cluster.config().power.freq.max_hz);
    } else {
      EXPECT_DOUBLE_EQ(cluster.frequency(r),
                       cluster.config().power.freq.min_hz);
    }
  }
}

TEST(ClusterTest, ReplicaDoublesEnergyNotTime) {
  VirtualCluster single(tiny_machine(), 4, 1);
  VirtualCluster doubled(tiny_machine(), 4, 2);
  for (auto* cluster : {&single, &doubled}) {
    cluster->advance_all(1.0, Activity::kActive, PhaseTag::kSolve);
  }
  EXPECT_DOUBLE_EQ(single.elapsed(), doubled.elapsed());
  EXPECT_NEAR(doubled.total_energy(), 2.0 * single.total_energy(), 1e-9);
}

TEST(ClusterTest, TotalEnergyIncludesNodeConstantAndSleep) {
  // One rank on a 24-core node: 23 cores sleep, uncore+DRAM accrue.
  VirtualCluster cluster(paper_node(), 1);
  cluster.charge_duration(0, 1.0, Activity::kActive, PhaseTag::kSolve);
  const auto& power_config = cluster.config().power;
  const Watts active = cluster.power_model().core_power(
      power_config.freq.max_hz, Activity::kActive);
  const Watts constant = cluster.power_model().node_constant_power(2);
  const Joules expected =
      active * 1.0 + constant * 1.0 + 23.0 * power_config.core_sleep * 1.0;
  EXPECT_NEAR(cluster.total_energy(), expected, 1e-9);
  EXPECT_NEAR(cluster.average_power(), expected, 1e-9);
}

TEST(ClusterTest, OndemandGovernorDownclocksDiskWait) {
  VirtualCluster cluster(tiny_machine(), 1);
  cluster.set_governor(power::make_ondemand_governor());
  // A long disk wait looks idle: the governor drops the frequency after
  // one sampling window.
  cluster.charge_duration(0, 1.0, Activity::kDiskWait,
                          PhaseTag::kCheckpoint);
  EXPECT_LT(cluster.frequency(0), cluster.config().power.freq.max_hz);
  // Computing again looks fully utilized: back to max.
  cluster.charge_duration(0, 1.0, Activity::kActive, PhaseTag::kSolve);
  EXPECT_DOUBLE_EQ(cluster.frequency(0), cluster.config().power.freq.max_hz);
}

TEST(ClusterTest, OndemandKeepsBusyPollAtMax) {
  VirtualCluster cluster(tiny_machine(), 1);
  cluster.set_governor(power::make_ondemand_governor());
  cluster.charge_duration(0, 1.0, Activity::kWaiting, PhaseTag::kComm);
  EXPECT_DOUBLE_EQ(cluster.frequency(0), cluster.config().power.freq.max_hz);
}

TEST(ClusterTest, GovernorSamplingLagSplitsInterval) {
  // The first sampling window of a down-clocked interval is charged at
  // the old frequency: energy must be between the two extremes.
  MachineConfig config = tiny_machine();
  config.governor_sampling_period = 0.5;
  VirtualCluster cluster(config, 1);
  cluster.set_governor(power::make_powersave_governor());
  cluster.charge_duration(0, 1.0, Activity::kActive, PhaseTag::kSolve);
  const Watts p_max = cluster.power_model().core_power(
      config.power.freq.max_hz, Activity::kActive);
  const Watts p_min = cluster.power_model().core_power(
      config.power.freq.min_hz, Activity::kActive);
  const Joules energy = cluster.energy().core_energy(PhaseTag::kSolve);
  EXPECT_NEAR(energy, 0.5 * p_max + 0.5 * p_min, 1e-9);
}

TEST(ClusterTest, ZeroDurationChargesNothing) {
  VirtualCluster cluster(tiny_machine(), 1);
  cluster.charge_duration(0, 0.0, Activity::kActive, PhaseTag::kSolve);
  EXPECT_DOUBLE_EQ(cluster.elapsed(), 0.0);
  EXPECT_DOUBLE_EQ(cluster.energy().core_energy_total(), 0.0);
}

}  // namespace
}  // namespace rsls::simrt
