// Unit tests: the keyed solve-artifact cache — single-build semantics
// under concurrency (in-flight dedup), deterministic hit/miss totals,
// LRU eviction, failure retry, and content-key sensitivity.

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "harness/artifact_cache.hpp"
#include "sparse/generators.hpp"

namespace rsls::harness {
namespace {

SolveArtifacts dummy_artifacts(double marker) {
  SolveArtifacts artifacts;
  artifacts.ff.time = marker;
  return artifacts;
}

TEST(ArtifactCacheTest, BuildsOncePerKeyAndCountsHits) {
  ArtifactCache cache(8);
  std::atomic<int> builds{0};
  const auto build = [&builds] {
    builds.fetch_add(1);
    return dummy_artifacts(1.0);
  };
  const auto first = cache.get_or_build("k", build);
  const auto second = cache.get_or_build("k", build);
  EXPECT_EQ(builds.load(), 1);
  EXPECT_EQ(first.get(), second.get());  // same shared entry
  const ArtifactCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.entries, 1u);
  EXPECT_EQ(stats.evictions, 0u);
}

TEST(ArtifactCacheTest, ConcurrentLookupsDedupInFlightBuilds) {
  // Many threads race on few keys; every key builds exactly once and
  // hit/miss totals are schedule-independent (misses == distinct keys,
  // hits == lookups − misses), because joins on an in-flight build
  // count as hits.
  ArtifactCache cache(16);
  constexpr int kThreads = 12;
  constexpr int kLookupsPerThread = 40;
  constexpr int kKeys = 4;
  std::atomic<int> builds{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&cache, &builds, t] {
      for (int i = 0; i < kLookupsPerThread; ++i) {
        const std::string key = "key-" + std::to_string((t + i) % kKeys);
        const auto artifacts = cache.get_or_build(key, [&builds] {
          builds.fetch_add(1);
          return dummy_artifacts(2.0);
        });
        ASSERT_NE(artifacts, nullptr);
      }
    });
  }
  for (auto& thread : threads) {
    thread.join();
  }
  EXPECT_EQ(builds.load(), kKeys);
  const ArtifactCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.misses, static_cast<std::uint64_t>(kKeys));
  EXPECT_EQ(stats.hits,
            static_cast<std::uint64_t>(kThreads * kLookupsPerThread - kKeys));
}

TEST(ArtifactCacheTest, EvictsLeastRecentlyUsedBeyondCapacity) {
  ArtifactCache cache(2);
  std::atomic<int> builds{0};
  const auto build = [&builds] {
    builds.fetch_add(1);
    return dummy_artifacts(3.0);
  };
  (void)cache.get_or_build("a", build);
  (void)cache.get_or_build("b", build);
  (void)cache.get_or_build("a", build);  // refresh a: b is now LRU
  (void)cache.get_or_build("c", build);  // evicts b
  EXPECT_EQ(cache.stats().evictions, 1u);
  EXPECT_EQ(cache.stats().entries, 2u);
  (void)cache.get_or_build("a", build);  // still cached
  EXPECT_EQ(builds.load(), 3);
  (void)cache.get_or_build("b", build);  // evicted: rebuilds
  EXPECT_EQ(builds.load(), 4);
}

TEST(ArtifactCacheTest, FailedBuildIsNotCachedAndRetries) {
  ArtifactCache cache(4);
  int attempts = 0;
  const auto flaky = [&attempts]() -> SolveArtifacts {
    if (++attempts == 1) {
      throw std::runtime_error("transient");
    }
    return dummy_artifacts(4.0);
  };
  EXPECT_THROW((void)cache.get_or_build("k", flaky), std::runtime_error);
  const auto artifacts = cache.get_or_build("k", flaky);
  EXPECT_EQ(artifacts->ff.time, 4.0);
  EXPECT_EQ(attempts, 2);
  // Both calls were misses: the failure left nothing behind to hit.
  EXPECT_EQ(cache.stats().misses, 2u);
  EXPECT_EQ(cache.stats().hits, 0u);
}

TEST(ArtifactCacheTest, KeySeparatesEveryBaselineRelevantKnob) {
  const sparse::Csr matrix = sparse::laplacian_1d(64);
  const Workload workload = Workload::create(matrix, 8, "lap64");

  ExperimentConfig base;
  base.processes = 8;
  const std::string reference = ArtifactCache::key_for(workload, base);
  // Stable for a repeated call...
  EXPECT_EQ(ArtifactCache::key_for(workload, base), reference);
  // ...different per ordering label...
  EXPECT_NE(ArtifactCache::key_for(workload, base, "rcm"), reference);
  // ...and per baseline-relevant config field.
  ExperimentConfig other = base;
  other.processes = 16;
  EXPECT_NE(ArtifactCache::key_for(workload, other), reference);
  other = base;
  other.tolerance = 1e-8;
  EXPECT_NE(ArtifactCache::key_for(workload, other), reference);
  other = base;
  other.max_iterations = 100;
  EXPECT_NE(ArtifactCache::key_for(workload, other), reference);
  other = base;
  other.solver = "pipelined-cg";
  EXPECT_NE(ArtifactCache::key_for(workload, other), reference);
  other = base;
  other.preconditioner = "jacobi";
  EXPECT_NE(ArtifactCache::key_for(workload, other), reference);
  other = base;
  other.network.emplace();
  other.network->topology = simrt::net::TopologyKind::kFatTree;
  EXPECT_NE(ArtifactCache::key_for(workload, other), reference);
  // Fault-plan knobs do NOT affect the baseline, so they share the key.
  other = base;
  other.faults = 99;
  other.fault_seed = 7;
  EXPECT_EQ(ArtifactCache::key_for(workload, other), reference);

  // Different matrix content ⇒ different fingerprint ⇒ different key.
  const Workload other_workload =
      Workload::create(sparse::laplacian_1d(65), 8, "lap65");
  EXPECT_NE(ArtifactCache::key_for(other_workload, base), reference);
}

}  // namespace
}  // namespace rsls::harness
