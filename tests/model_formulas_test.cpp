// Unit + property tests: Young/Daly intervals, MTBF model, and the §3
// analytical cost models (closed-form algebra checked by hand).

#include <gtest/gtest.h>

#include <cmath>

#include "core/error.hpp"
#include "model/cost_models.hpp"
#include "model/mtbf.hpp"
#include "model/young_daly.hpp"

namespace rsls::model {
namespace {

TEST(YoungDalyTest, YoungFormula) {
  EXPECT_DOUBLE_EQ(young_interval(2.0, 100.0), 20.0);
  EXPECT_DOUBLE_EQ(young_interval(0.5, 3600.0), 60.0);
}

TEST(YoungDalyTest, YoungMonotone) {
  EXPECT_LT(young_interval(1.0, 100.0), young_interval(1.0, 1000.0));
  EXPECT_LT(young_interval(1.0, 100.0), young_interval(4.0, 100.0));
}

TEST(YoungDalyTest, DalyNearYoungForSmallTc) {
  const double young = young_interval(0.01, 10000.0);
  const double daly = daly_interval(0.01, 10000.0);
  EXPECT_NEAR(daly / young, 1.0, 0.01);
}

TEST(YoungDalyTest, DalyCapsAtMtbf) {
  EXPECT_DOUBLE_EQ(daly_interval(300.0, 100.0), 100.0);
}

TEST(YoungDalyTest, RejectsNonPositive) {
  EXPECT_THROW(young_interval(0.0, 1.0), Error);
  EXPECT_THROW(young_interval(1.0, 0.0), Error);
  EXPECT_THROW(daly_interval(-1.0, 1.0), Error);
}

TEST(MtbfTest, SystemMtbfInverseInNodes) {
  const auto tech = petascale_node();
  const double one = system_mtbf_hours(tech, 1000, FaultClass::kSnf);
  const double ten = system_mtbf_hours(tech, 10000, FaultClass::kSnf);
  EXPECT_NEAR(one / ten, 10.0, 1e-9);
}

TEST(MtbfTest, SwoIndependentOfNodeCount) {
  const auto tech = petascale_node();
  EXPECT_DOUBLE_EQ(system_mtbf_hours(tech, 100, FaultClass::kSwo),
                   system_mtbf_hours(tech, 100000, FaultClass::kSwo));
}

TEST(MtbfTest, ExascaleWorseThanPetascalePerClass) {
  const auto peta = petascale_node();
  const auto exa = exascale_node();
  for (const auto fc : all_fault_classes()) {
    EXPECT_LE(system_mtbf_hours(exa, 1000000, fc),
              system_mtbf_hours(peta, 20000, fc))
        << to_string(fc);
  }
}

TEST(MtbfTest, CombinedBelowEveryClass) {
  const auto tech = petascale_node();
  const double combined = combined_mtbf_hours(tech, 20000);
  for (const auto fc : all_fault_classes()) {
    EXPECT_LE(combined, system_mtbf_hours(tech, 20000, fc));
  }
}

TEST(MtbfTest, SoftHardClassification) {
  EXPECT_TRUE(is_soft(FaultClass::kDce));
  EXPECT_TRUE(is_soft(FaultClass::kSdc));
  EXPECT_FALSE(is_soft(FaultClass::kSnf));
  EXPECT_FALSE(is_soft(FaultClass::kSwo));
}

BaseCase base_case() {
  BaseCase base;
  base.t_base = 100.0;
  base.n_cores = 64;
  base.p1 = 8.0;
  return base;
}

TEST(CostModelTest, FaultFreeIdentity) {
  const auto costs = fault_free(base_case());
  EXPECT_DOUBLE_EQ(costs.total_time, 100.0);
  EXPECT_DOUBLE_EQ(costs.t_res, 0.0);
  EXPECT_DOUBLE_EQ(costs.p_avg, 512.0);
  EXPECT_DOUBLE_EQ(costs.total_energy, 51200.0);
  EXPECT_DOUBLE_EQ(costs.time_ratio, 1.0);
  EXPECT_DOUBLE_EQ(costs.energy_ratio, 1.0);
  EXPECT_FALSE(costs.halted);
}

TEST(CostModelTest, RedundancyDoubles) {
  const auto costs = redundancy(base_case());
  EXPECT_DOUBLE_EQ(costs.time_ratio, 1.0);
  EXPECT_DOUBLE_EQ(costs.power_ratio, 2.0);
  EXPECT_DOUBLE_EQ(costs.energy_ratio, 2.0);
  EXPECT_DOUBLE_EQ(costs.e_res_ratio, 1.0);  // Eq. 12: one extra E_base
}

TEST(CostModelTest, CheckpointRestartClosedForm) {
  // t_C = 1, I_C = 10, λ = 1/100: overhead = 1/10 + 10/200 = 0.15,
  // T_N = 100 / 0.85.
  CrModelParams params;
  params.t_c = 1.0;
  params.interval = 10.0;
  params.lambda = 0.01;
  params.checkpoint_power_factor = 0.5;
  const auto costs = checkpoint_restart(base_case(), params);
  EXPECT_NEAR(costs.total_time, 100.0 / 0.85, 1e-9);
  EXPECT_NEAR(costs.t_res, 100.0 / 0.85 - 100.0, 1e-9);
  // Energy: checkpoint phases at half power.
  const double t_n = 100.0 / 0.85;
  const double t_chkpt = 0.1 * t_n;
  const double t_lost = 0.05 * t_n;
  const double expected_energy =
      512.0 * (100.0 + t_lost) + 256.0 * t_chkpt;
  EXPECT_NEAR(costs.total_energy, expected_energy, 1e-6);
  EXPECT_LT(costs.power_ratio, 1.0);  // checkpointing draws less
}

TEST(CostModelTest, CheckpointHaltsWhenOverheadFull) {
  CrModelParams params;
  params.t_c = 10.0;
  params.interval = 10.0;  // checkpointing all the time
  params.lambda = 0.01;
  const auto costs = checkpoint_restart(base_case(), params);
  EXPECT_TRUE(costs.halted);
  EXPECT_TRUE(std::isinf(costs.t_res_ratio));
}

TEST(CostModelTest, ForwardRecoveryClosedForm) {
  // t_const = 2, λ = 1/100, extra = 0.4:
  // T_N = 100·1.4 / (1 − 0.02) = 140/0.98.
  FwModelParams params;
  params.t_const = 2.0;
  params.extra_time_fraction = 0.4;
  params.lambda = 0.01;
  params.active_ranks = 1;
  params.idle_power = 4.0;  // half of P₁
  const auto costs = forward_recovery(base_case(), params);
  EXPECT_NEAR(costs.total_time, 140.0 / 0.98, 1e-9);
  const double t_const_total = 0.02 * costs.total_time;
  const double p_const = 8.0 + 63.0 * 4.0;
  const double expected_energy = 512.0 * 140.0 + p_const * t_const_total;
  EXPECT_NEAR(costs.total_energy, expected_energy, 1e-6);
}

TEST(CostModelTest, FwHaltsWhenConstructionDominates) {
  FwModelParams params;
  params.t_const = 200.0;
  params.extra_time_fraction = 0.0;
  params.lambda = 0.01;  // λ·t_const = 2 ≥ 1
  params.idle_power = 1.0;
  EXPECT_TRUE(forward_recovery(base_case(), params).halted);
}

TEST(CostModelTest, FwZeroCostsReduceToFaultFree) {
  FwModelParams params;
  params.t_const = 0.0;
  params.extra_time_fraction = 0.0;
  params.lambda = 0.0;
  params.idle_power = 1.0;
  const auto costs = forward_recovery(base_case(), params);
  EXPECT_DOUBLE_EQ(costs.time_ratio, 1.0);
  EXPECT_DOUBLE_EQ(costs.energy_ratio, 1.0);
  EXPECT_DOUBLE_EQ(costs.e_res_ratio, 0.0);
}

TEST(CostModelTest, AbftZeroCostsReduceToFaultFree) {
  AbftModelParams params;
  const auto costs = abft(base_case(), params);
  EXPECT_DOUBLE_EQ(costs.time_ratio, 1.0);
  EXPECT_DOUBLE_EQ(costs.energy_ratio, 1.0);
  EXPECT_DOUBLE_EQ(costs.e_res_ratio, 0.0);
  EXPECT_FALSE(costs.halted);
}

TEST(CostModelTest, AbftMatchesClosedForm) {
  AbftModelParams params;
  params.encode_fraction = 0.05;
  params.t_decode = 2.0;
  params.lambda = 1e-2;
  params.encode_power_factor = 0.9;
  const BaseCase base = base_case();
  const auto costs = abft(base, params);
  // T_N = T_base·(1 + f_enc)/(1 − λ·t_decode).
  const double expected_time = base.t_base * 1.05 / (1.0 - 0.02);
  EXPECT_NEAR(costs.total_time, expected_time, 1e-9);
  EXPECT_NEAR(costs.t_res, expected_time - base.t_base, 1e-9);
  // Encode runs below normal power, so P_avg < N·P₁ while E grows.
  EXPECT_LT(costs.power_ratio, 1.0);
  EXPECT_GT(costs.e_res_ratio, 0.0);
  // Energy decomposition: base + decode at N·P₁, encode at 0.9·N·P₁.
  const double p_normal = static_cast<double>(base.n_cores) * base.p1;
  const double t_encode = 0.05 * base.t_base;
  const double t_decode_total = 0.02 * expected_time;
  EXPECT_NEAR(costs.total_energy,
              p_normal * (base.t_base + t_decode_total) +
                  0.9 * p_normal * t_encode,
              1e-6);
}

TEST(CostModelTest, AbftHaltsWhenDecodeDominates) {
  AbftModelParams params;
  params.t_decode = 10.0;
  params.lambda = 0.1;  // λ·t_decode = 1: no forward progress.
  const auto costs = abft(base_case(), params);
  EXPECT_TRUE(costs.halted);
  EXPECT_TRUE(std::isinf(costs.total_time));
}

// Property: overheads are monotone in the failure rate.
class LambdaMonotoneTest : public ::testing::TestWithParam<double> {};

TEST_P(LambdaMonotoneTest, CrOverheadGrowsWithLambda) {
  CrModelParams lo_params;
  lo_params.t_c = 0.5;
  lo_params.interval = young_interval(0.5, 1.0 / GetParam());
  lo_params.lambda = GetParam();
  const auto lo = checkpoint_restart(base_case(), lo_params);

  CrModelParams hi_params = lo_params;
  hi_params.lambda = GetParam() * 4.0;
  hi_params.interval = young_interval(0.5, 1.0 / hi_params.lambda);
  const auto hi = checkpoint_restart(base_case(), hi_params);
  EXPECT_GT(hi.t_res_ratio, lo.t_res_ratio);
  EXPECT_GT(hi.e_res_ratio, lo.e_res_ratio);
}

TEST_P(LambdaMonotoneTest, AbftOverheadGrowsWithLambda) {
  AbftModelParams params;
  params.encode_fraction = 0.02;
  params.t_decode = 1.0;
  params.lambda = GetParam();
  const auto lo = abft(base_case(), params);
  params.lambda = GetParam() * 4.0;
  const auto hi = abft(base_case(), params);
  EXPECT_GT(hi.t_res_ratio, lo.t_res_ratio);
  EXPECT_GT(hi.e_res_ratio, lo.e_res_ratio);
}

TEST_P(LambdaMonotoneTest, FwOverheadGrowsWithLambda) {
  FwModelParams params;
  params.t_const = 1.0;
  params.extra_time_fraction = 0.2;
  params.lambda = GetParam();
  params.idle_power = 4.0;
  const auto lo = forward_recovery(base_case(), params);
  params.lambda = GetParam() * 4.0;
  const auto hi = forward_recovery(base_case(), params);
  EXPECT_GT(hi.t_res_ratio, lo.t_res_ratio);
}

INSTANTIATE_TEST_SUITE_P(Rates, LambdaMonotoneTest,
                         ::testing::Values(1e-5, 1e-4, 1e-3, 5e-3));

TEST(CostModelTest, RejectsInvalidInputs) {
  CrModelParams cr;
  cr.t_c = 0.0;
  cr.interval = 1.0;
  EXPECT_THROW(checkpoint_restart(base_case(), cr), Error);
  FwModelParams fw;
  fw.active_ranks = 0;
  EXPECT_THROW(forward_recovery(base_case(), fw), Error);
  AbftModelParams ab;
  ab.encode_fraction = -0.1;
  EXPECT_THROW(abft(base_case(), ab), Error);
  ab = AbftModelParams{};
  ab.encode_power_factor = 0.0;
  EXPECT_THROW(abft(base_case(), ab), Error);
  BaseCase bad = base_case();
  bad.t_base = 0.0;
  EXPECT_THROW(fault_free(bad), Error);
}

TEST(PrecondModelTest, ReshapesBaseCaseBySetupApplyAndIterationTerms) {
  BaseCase base;
  base.t_base = 100.0;
  base.n_cores = 64;
  base.p1 = 8.0;

  // T' = t_setup + f_iter·(1 + f_apply)·T_base.
  PrecondParams params;
  params.t_setup = 5.0;
  params.apply_fraction = 0.5;
  params.iteration_factor = 0.4;
  const BaseCase shaped = preconditioned(base, params);
  EXPECT_NEAR(shaped.t_base, 5.0 + 0.4 * 1.5 * 100.0, 1e-12);
  EXPECT_EQ(shaped.n_cores, base.n_cores);
  EXPECT_EQ(shaped.p1, base.p1);

  // The identity preconditioner is the no-op of the model.
  const BaseCase same = preconditioned(base, PrecondParams{});
  EXPECT_NEAR(same.t_base, base.t_base, 1e-12);

  // The reshaped operating point composes with the per-scheme
  // refinements: an effective preconditioner lowers CR's modeled total
  // because every overhead multiplies on a shorter base run.
  CrModelParams cr;
  cr.t_c = 0.5;
  cr.interval = 10.0;
  cr.lambda = 0.01;
  const SchemeCosts plain = checkpoint_restart(base, cr);
  const SchemeCosts pcg = checkpoint_restart(shaped, cr);
  EXPECT_LT(pcg.total_time, plain.total_time);
  EXPECT_LT(pcg.total_energy, plain.total_energy);

  PrecondParams bad;
  bad.iteration_factor = 0.0;
  EXPECT_THROW(preconditioned(base, bad), Error);
}

}  // namespace
}  // namespace rsls::model
