// Unit tests: experiment harness — machine sizing, workload creation,
// scheme factory, baseline runs, normalization, sweeps.

#include <gtest/gtest.h>

#include "abft/encoded_checkpoint.hpp"
#include "abft/esr.hpp"
#include "core/error.hpp"
#include "harness/experiment.hpp"
#include "harness/scheme_factory.hpp"
#include "harness/sweep.hpp"
#include "resilience/checkpoint.hpp"
#include "resilience/dmr.hpp"
#include "resilience/forward.hpp"
#include "sparse/generators.hpp"

namespace rsls::harness {
namespace {

sparse::Csr test_matrix() {
  return sparse::banded_spd({256, 4, 1.0, 0.02, 0.0, 17});
}

TEST(MachineForTest, PhysicalCoresForSmallCounts) {
  const auto machine = machine_for(192);
  EXPECT_EQ(machine.total_cores(), 192);
  EXPECT_EQ(machine.cores_per_socket, 12);
}

TEST(MachineForTest, HyperthreadingFor256) {
  // 256 > 192 physical cores: the paper enables 2-way HT.
  const auto machine = machine_for(256);
  EXPECT_EQ(machine.cores_per_socket, 24);
  EXPECT_GE(machine.total_cores(), 256);
  EXPECT_EQ(machine.nodes, 8);
}

TEST(MachineForTest, NodeScalingAsLastResort) {
  const auto machine = machine_for(1000);
  EXPECT_GE(machine.total_cores(), 1000);
}

TEST(WorkloadTest, CreateBindsEverything) {
  const auto workload = Workload::create(test_matrix(), 8);
  EXPECT_EQ(workload.a.parts(), 8);
  EXPECT_EQ(workload.b.size(), 256u);
  EXPECT_EQ(workload.x0.size(), 256u);
  for (const Real v : workload.x0) {
    EXPECT_DOUBLE_EQ(v, 0.0);
  }
}

TEST(SchemeFactoryTest, AllNamesConstructible) {
  const SchemeFactoryConfig config;
  const RealVec x0(16, 0.0);
  for (const auto& name : all_scheme_names()) {
    const auto scheme = make_scheme(name, config, x0);
    ASSERT_NE(scheme, nullptr);
    EXPECT_EQ(scheme->name(), name) << name;
    EXPECT_GE(scheme->replica_factor(), 1) << name;
  }
}

TEST(SchemeFactoryTest, UnknownNameThrowsClearError) {
  try {
    make_scheme("XYZ", SchemeFactoryConfig{}, RealVec{});
    FAIL() << "unknown scheme name must throw";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("unknown recovery scheme"), std::string::npos);
    EXPECT_NE(what.find("XYZ"), std::string::npos);
  }
}

TEST(SchemeFactoryTest, TypesAreCorrect) {
  const SchemeFactoryConfig config;
  const RealVec x0(16, 0.0);
  EXPECT_NE(dynamic_cast<resilience::Dmr*>(
                make_scheme("RD", config, x0).get()),
            nullptr);
  EXPECT_NE(dynamic_cast<resilience::CheckpointRestart*>(
                make_scheme("CR-D", config, x0).get()),
            nullptr);
  EXPECT_NE(dynamic_cast<resilience::ForwardRecovery*>(
                make_scheme("LSI-DVFS", config, x0).get()),
            nullptr);
  EXPECT_NE(dynamic_cast<abft::EsrScheme*>(
                make_scheme("ESR", config, x0).get()),
            nullptr);
  EXPECT_NE(dynamic_cast<abft::EncodedCheckpoint*>(
                make_scheme("ABFT-CR", config, x0).get()),
            nullptr);
}

TEST(SchemeFactoryTest, AbftParityBlocksConfigured) {
  SchemeFactoryConfig config;
  config.abft_parity_blocks = 3;
  const RealVec x0(16, 0.0);
  const auto esr = make_scheme("ESR", config, x0);
  EXPECT_EQ(dynamic_cast<abft::EsrScheme&>(*esr).options().parity_blocks, 3);
  const auto cr = make_scheme("ABFT-CR", config, x0);
  EXPECT_EQ(
      dynamic_cast<abft::EncodedCheckpoint&>(*cr).options().parity_blocks, 3);
}

TEST(SchemeFactoryTest, SchemeSets) {
  EXPECT_EQ(iteration_scheme_names().size(), 6u);
  EXPECT_EQ(cost_scheme_names().size(), 5u);
  EXPECT_EQ(all_scheme_names().size(), 15u);
}

TEST(ExperimentTest, FaultFreeBaselineConverges) {
  ExperimentConfig config;
  config.processes = 16;
  const auto workload = Workload::create(test_matrix(), 16);
  const auto ff = run_fault_free(workload, config);
  EXPECT_GT(ff.iterations, 0);
  EXPECT_GT(ff.time, 0.0);
  EXPECT_GT(ff.energy, 0.0);
  EXPECT_GT(ff.power, 0.0);
  EXPECT_NEAR(ff.iteration_seconds * static_cast<double>(ff.iterations),
              ff.time, ff.time * 0.01);
}

TEST(ExperimentTest, RunSchemeNormalizes) {
  ExperimentConfig config;
  config.processes = 16;
  config.faults = 5;
  const auto workload = Workload::create(test_matrix(), 16);
  const auto ff = run_fault_free(workload, config);
  const auto run = run_scheme(workload, "F0", config, ff);
  EXPECT_GT(run.iteration_ratio, 1.0);
  EXPECT_GT(run.time_ratio, 1.0);
  EXPECT_GT(run.energy_ratio, 1.0);
  EXPECT_NEAR(run.power_ratio, 1.0, 0.1);
  EXPECT_EQ(run.report.faults, 5);
}

TEST(ExperimentTest, MeasuredModelParametersExposed) {
  ExperimentConfig config;
  config.processes = 16;
  config.faults = 5;
  const auto workload = Workload::create(test_matrix(), 16);
  const auto ff = run_fault_free(workload, config);
  const auto li = run_scheme(workload, "LI", config, ff);
  EXPECT_GT(li.t_const_mean, 0.0);
  EXPECT_DOUBLE_EQ(li.t_c_mean, 0.0);
  const auto cr = run_scheme(workload, "CR-M", config, ff);
  EXPECT_GT(cr.t_c_mean, 0.0);
  EXPECT_GT(cr.checkpoints, 0);
  EXPECT_DOUBLE_EQ(cr.t_const_mean, 0.0);
}

TEST(ExperimentTest, YoungIntervalDerivedFromMachine) {
  ExperimentConfig config;
  config.processes = 16;
  config.faults = 5;
  config.use_young_interval = true;
  const auto workload = Workload::create(test_matrix(), 16);
  const auto ff = run_fault_free(workload, config);
  const auto crd = run_scheme(workload, "CR-D", config, ff);
  const auto crm = run_scheme(workload, "CR-M", config, ff);
  EXPECT_GT(crd.cr_interval_used, 0);
  EXPECT_GT(crm.cr_interval_used, 0);
  // Memory checkpoints are cheap, so Young checkpoints more often.
  EXPECT_LE(crm.cr_interval_used, crd.cr_interval_used);
}

TEST(ExperimentTest, CheckpointEstimateMatchesMachineModel) {
  const auto workload = Workload::create(test_matrix(), 16);
  const auto machine = machine_for(16);
  const Seconds disk = estimate_checkpoint_seconds(workload, machine, true);
  const Seconds mem = estimate_checkpoint_seconds(workload, machine, false);
  EXPECT_GT(disk, mem);
  EXPECT_NEAR(disk,
              machine.disk_latency + 256.0 * 8.0 / machine.disk_bandwidth,
              1e-12);
}

TEST(SweepTest, MatricesSweepSharesBaselines) {
  ExperimentConfig config;
  config.processes = 16;
  config.faults = 3;
  const auto results =
      sweep_matrices({"syn:bcsstk06"}, {"RD", "F0"}, config, /*quick=*/true);
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].matrix, "syn:bcsstk06");
  ASSERT_EQ(results[0].runs.size(), 2u);
  EXPECT_EQ(results[0].runs[0].scheme, "RD");
  EXPECT_EQ(results[0].runs[1].scheme, "F0");
}

TEST(SweepTest, AveragesAggregatePerScheme) {
  ExperimentConfig config;
  config.processes = 16;
  config.faults = 3;
  const auto results = sweep_matrices({"syn:bcsstk06", "syn:ex10hs"},
                                      {"RD", "F0"}, config, true);
  const auto averages = average_over_matrices(results);
  ASSERT_EQ(averages.size(), 2u);
  EXPECT_EQ(averages[0].scheme, "RD");
  EXPECT_NEAR(averages[0].iteration_ratio, 1.0, 1e-9);
  EXPECT_GT(averages[1].iteration_ratio, 1.0);
  EXPECT_NEAR(averages[0].power_ratio, 2.0, 0.05);
}

}  // namespace
}  // namespace rsls::harness
