// Unit tests: the simrt::net interconnect layer — topology hop/contention
// properties, collective algorithm costs, the default-equivalence
// guarantee (FlatNetwork + recursive doubling reproduces the seed α–β
// closed forms bit-for-bit), asymmetric halo charging, network-field
// validation, and the RSLS_NET_* environment overlay.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <optional>
#include <string>

#include "core/error.hpp"
#include "harness/experiment.hpp"
#include "simrt/cluster.hpp"
#include "simrt/net/collectives.hpp"
#include "simrt/net/interconnect.hpp"
#include "simrt/net/topology.hpp"

namespace rsls {
namespace {

using power::PhaseTag;
using simrt::net::CollectiveKind;
using simrt::net::NetworkConfig;
using simrt::net::TopologyKind;

/// RAII guard restoring one environment variable on scope exit.
class EnvGuard {
 public:
  explicit EnvGuard(const char* name) : name_(name) {
    const char* value = std::getenv(name);
    if (value != nullptr) {
      saved_ = value;
    }
  }
  ~EnvGuard() {
    if (saved_.has_value()) {
      ::setenv(name_, saved_->c_str(), 1);
    } else {
      ::unsetenv(name_);
    }
  }
  EnvGuard(const EnvGuard&) = delete;
  EnvGuard& operator=(const EnvGuard&) = delete;

 private:
  const char* name_;
  std::optional<std::string> saved_;
};

// --- name parsing ------------------------------------------------------

TEST(NetworkConfigTest, ParsesTopologyAndCollectiveNames) {
  EXPECT_EQ(simrt::net::topology_from_name("flat"), TopologyKind::kFlat);
  EXPECT_EQ(simrt::net::topology_from_name("fat-tree"),
            TopologyKind::kFatTree);
  EXPECT_EQ(simrt::net::topology_from_name("fattree"), TopologyKind::kFatTree);
  EXPECT_EQ(simrt::net::topology_from_name("torus3d"), TopologyKind::kTorus3D);
  EXPECT_EQ(simrt::net::topology_from_name("torus"), TopologyKind::kTorus3D);
  EXPECT_FALSE(simrt::net::topology_from_name("hypercube").has_value());

  EXPECT_EQ(simrt::net::collective_from_name("recursive-doubling"),
            CollectiveKind::kRecursiveDoubling);
  EXPECT_EQ(simrt::net::collective_from_name("rd"),
            CollectiveKind::kRecursiveDoubling);
  EXPECT_EQ(simrt::net::collective_from_name("ring"), CollectiveKind::kRing);
  EXPECT_EQ(simrt::net::collective_from_name("binomial-tree"),
            CollectiveKind::kBinomialTree);
  EXPECT_EQ(simrt::net::collective_from_name("binomial"),
            CollectiveKind::kBinomialTree);
  EXPECT_FALSE(simrt::net::collective_from_name("bruck").has_value());

  // Round trip through to_string.
  for (const auto kind :
       {TopologyKind::kFlat, TopologyKind::kFatTree, TopologyKind::kTorus3D}) {
    EXPECT_EQ(simrt::net::topology_from_name(simrt::net::to_string(kind)),
              kind);
  }
  for (const auto kind :
       {CollectiveKind::kRecursiveDoubling, CollectiveKind::kRing,
        CollectiveKind::kBinomialTree}) {
    EXPECT_EQ(simrt::net::collective_from_name(simrt::net::to_string(kind)),
              kind);
  }
}

// --- topology properties -----------------------------------------------

TEST(TopologyTest, FlatNetworkIsOneHopUniform) {
  const simrt::net::FlatNetwork flat(16);
  EXPECT_TRUE(flat.uniform());
  EXPECT_EQ(flat.diameter(), 1);
  EXPECT_EQ(flat.hops(3, 3), 0);
  EXPECT_EQ(flat.hops(0, 15), 1);
  EXPECT_DOUBLE_EQ(flat.contention(16), 1.0);
  EXPECT_DOUBLE_EQ(flat.mean_hops(), 1.0);
}

TEST(TopologyTest, FatTreeHopTiersAndSymmetry) {
  // radix 4 → 4 ranks per leaf, 4 leaves per pod: 192 would be huge, use
  // 32 ranks = 8 leaves = 2 pods.
  const simrt::net::FatTree tree(32, 4, 2.0);
  EXPECT_EQ(tree.hops(0, 0), 0);
  EXPECT_EQ(tree.hops(0, 1), 2);    // same leaf
  EXPECT_EQ(tree.hops(0, 5), 4);    // same pod, different leaf
  EXPECT_EQ(tree.hops(0, 31), 6);   // cross-pod
  EXPECT_EQ(tree.diameter(), 6);
  for (const auto [a, b] : {std::pair<Index, Index>{0, 1},
                            {0, 5},
                            {0, 31},
                            {7, 21}}) {
    EXPECT_EQ(tree.hops(a, b), tree.hops(b, a)) << a << "," << b;
  }
  // Contention ramps toward the oversubscription ratio but never above.
  EXPECT_DOUBLE_EQ(tree.contention(1), 1.0);
  EXPECT_DOUBLE_EQ(tree.contention(32), 2.0);
  EXPECT_LE(tree.contention(16), 2.0);
}

TEST(TopologyTest, TorusDerivesNearCubicDimsAndWrapsAround) {
  const simrt::net::Torus3D torus(192, 0, 0, 0);
  EXPECT_EQ(torus.dim_x(), 6);
  EXPECT_EQ(torus.dim_y(), 6);
  EXPECT_EQ(torus.dim_z(), 6);
  EXPECT_EQ(torus.hops(0, 0), 0);
  EXPECT_EQ(torus.hops(0, 1), 1);  // +x neighbour
  // Wraparound: the far end of the x ring is one hop, not dim_x − 1.
  EXPECT_EQ(torus.hops(0, torus.dim_x() - 1), 1);
  // Symmetry over a few pairs.
  for (const auto [a, b] : {std::pair<Index, Index>{0, 191},
                            {5, 100},
                            {37, 150}}) {
    EXPECT_EQ(torus.hops(a, b), torus.hops(b, a)) << a << "," << b;
  }
  // Diameter of a 6×6×6 torus: 3 per axis.
  EXPECT_EQ(torus.diameter(), 9);
  EXPECT_GT(torus.mean_hops(), 1.0);
}

TEST(TopologyTest, ExplicitTorusDimsMustCoverRanks) {
  const simrt::net::Torus3D torus(24, 4, 3, 2);
  EXPECT_EQ(torus.dim_x(), 4);
  EXPECT_EQ(torus.num_ranks(), 24);
  EXPECT_THROW(simrt::net::Torus3D(25, 4, 3, 2), Error);
}

// --- MachineConfig validation (network fields) -------------------------

TEST(MachineValidateTest, RejectsNonsenseNetworkFields) {
  const simrt::MachineConfig good = simrt::paper_cluster();
  EXPECT_NO_THROW(simrt::validate(good));

  simrt::MachineConfig bad = good;
  bad.net_bandwidth = 0.0;
  EXPECT_THROW(simrt::validate(bad), Error);
  bad = good;
  bad.net_bandwidth = -1e9;
  EXPECT_THROW(simrt::validate(bad), Error);
  bad = good;
  bad.net_latency = -1e-6;
  EXPECT_THROW(simrt::validate(bad), Error);
  bad = good;
  bad.net.per_hop_latency = -1e-9;
  EXPECT_THROW(simrt::validate(bad), Error);
  bad = good;
  bad.net.fat_tree_radix = 1;
  EXPECT_THROW(simrt::validate(bad), Error);
  bad = good;
  bad.net.fat_tree_oversubscription = 0.5;
  EXPECT_THROW(simrt::validate(bad), Error);
  bad = good;
  bad.net.torus_x = -2;
  EXPECT_THROW(simrt::validate(bad), Error);
  // Torus dims must be all-set or all-derived.
  bad = good;
  bad.net.torus_x = 4;
  EXPECT_THROW(simrt::validate(bad), Error);
  bad.net.torus_y = 3;
  bad.net.torus_z = 2;
  EXPECT_NO_THROW(simrt::validate(bad));
}

// --- default equivalence -----------------------------------------------

TEST(DefaultEquivalenceTest, AllreduceMatchesSeedClosedFormBitwise) {
  for (const Index p : {1, 2, 3, 8, 24, 48, 192}) {
    const simrt::MachineConfig config = simrt::paper_cluster();
    simrt::VirtualCluster cluster(config, p);
    for (const Bytes bytes : {0.0, 8.0, 1536.0, 65536.0}) {
      const double stages = std::ceil(
          std::log2(static_cast<double>(std::max<Index>(p, 2))));
      const Seconds expected =
          stages * (config.net_latency + bytes / config.net_bandwidth);
      EXPECT_EQ(cluster.allreduce_seconds(bytes), expected)  // bitwise
          << "p=" << p << " bytes=" << bytes;
    }
    EXPECT_EQ(cluster.p2p_seconds(1024.0),
              config.net_latency + 1024.0 / config.net_bandwidth);
  }
}

TEST(DefaultEquivalenceTest, HaloChargesSeedExpressionPerRank) {
  const simrt::MachineConfig config = simrt::paper_cluster();
  simrt::VirtualCluster cluster(config, 4);
  const std::vector<Bytes> bytes = {1024.0, 0.0, 4096.0, 512.0};
  const IndexVec msgs = {2, 0, 6, 1};
  cluster.halo_exchange(bytes, msgs, PhaseTag::kComm);
  for (Index r = 0; r < 4; ++r) {
    const auto i = static_cast<std::size_t>(r);
    const Seconds expected =
        static_cast<double>(msgs[i]) * config.net_latency +
        bytes[i] / config.net_bandwidth;
    EXPECT_EQ(cluster.now(r), expected) << "rank " << r;  // bitwise
  }
}

TEST(DefaultEquivalenceTest, ReplicaFetchMatchesSeedTransfers) {
  const simrt::MachineConfig config = simrt::paper_cluster();
  const Bytes bytes = 8192.0;
  {
    // DMR restore: one copy = one p2p transfer.
    simrt::VirtualCluster cluster(config, 8, 2);
    cluster.replica_fetch(3, bytes, 1, PhaseTag::kReconstruct);
    EXPECT_EQ(cluster.now(3), cluster.p2p_seconds(bytes));
    EXPECT_EQ(cluster.now(0), 0.0);  // one-sided: nobody else blocks
  }
  {
    // TMR vote: two copies = 2 × p2p, the seed's exact expression.
    simrt::VirtualCluster cluster(config, 8, 3);
    cluster.replica_fetch(5, bytes, 2, PhaseTag::kReconstruct);
    EXPECT_EQ(cluster.now(5), 2.0 * cluster.p2p_seconds(bytes));
  }
}

// --- asymmetric halo charging on hop-aware topologies ------------------

TEST(HaloExchangeTest, ChargesRanksAsymmetricallyWithoutHiddenSync) {
  for (const auto topology : {TopologyKind::kFlat, TopologyKind::kFatTree}) {
    simrt::MachineConfig config = simrt::paper_cluster();
    config.net.topology = topology;
    config.net.fat_tree_radix = 4;  // several leaves at 16 ranks
    simrt::VirtualCluster cluster(config, 16);

    std::vector<Bytes> bytes(16, 0.0);
    IndexVec msgs(16, 0);
    bytes[2] = 8192.0;
    msgs[2] = 4;
    bytes[9] = 1024.0;
    msgs[9] = 1;
    cluster.halo_exchange(bytes, msgs, PhaseTag::kComm);

    const auto& net = cluster.interconnect();
    for (Index r = 0; r < 16; ++r) {
      const auto i = static_cast<std::size_t>(r);
      const Seconds expected =
          net.halo_seconds(r, static_cast<double>(msgs[i]), bytes[i]);
      EXPECT_EQ(cluster.now(r), expected)
          << simrt::net::to_string(topology) << " rank " << r;
    }
    // No hidden barrier: unloaded ranks stay at t = 0 while loaded ranks
    // advance by exactly their own message cost.
    EXPECT_EQ(cluster.now(0), 0.0);
    EXPECT_GT(cluster.now(2), cluster.now(9));
  }
}

// --- collective algorithms ---------------------------------------------

TEST(CollectiveTest, RingBeatsNobodyOnSmallMessagesAt192) {
  // 2(p−1) latency-bound stages vs log₂ p: ring must be slower than
  // recursive doubling for an 8-byte payload at the paper's scale.
  simrt::MachineConfig rd_config = simrt::paper_cluster();
  simrt::MachineConfig ring_config = simrt::paper_cluster();
  ring_config.net.collective = CollectiveKind::kRing;
  simrt::VirtualCluster rd(rd_config, 192);
  simrt::VirtualCluster ring(ring_config, 192);
  EXPECT_GT(ring.allreduce_seconds(8.0), rd.allreduce_seconds(8.0));
}

TEST(CollectiveTest, BinomialTreeChargesRanksAsymmetrically) {
  simrt::MachineConfig config = simrt::paper_cluster();
  config.net.collective = CollectiveKind::kBinomialTree;
  simrt::VirtualCluster cluster(config, 8);
  const auto costs = cluster.interconnect().allreduce_costs(1024.0);
  ASSERT_EQ(costs.size(), 8u);
  const auto [min_it, max_it] = std::minmax_element(costs.begin(), costs.end());
  EXPECT_LT(*min_it, *max_it);  // tree depth differs by rank
  for (const Seconds c : costs) {
    EXPECT_GT(c, 0.0);
  }
}

TEST(CollectiveTest, BroadcastAndReduceAdvanceEveryRank) {
  simrt::MachineConfig config = simrt::paper_cluster();
  simrt::VirtualCluster cluster(config, 8);
  cluster.broadcast(0, 4096.0, PhaseTag::kComm);
  for (Index r = 1; r < 8; ++r) {
    EXPECT_GT(cluster.now(r), 0.0) << "rank " << r;
  }
  const Seconds after_bcast = cluster.elapsed();
  cluster.reduce(3, 4096.0, PhaseTag::kComm);
  EXPECT_GT(cluster.elapsed(), after_bcast);
  EXPECT_DOUBLE_EQ(cluster.comm_stats().broadcasts, 1.0);
  EXPECT_DOUBLE_EQ(cluster.comm_stats().reductions, 1.0);
}

// --- CommStats accounting ----------------------------------------------

TEST(CommStatsTest, CountsMessagesAndBytesPerPrimitive) {
  simrt::MachineConfig config = simrt::paper_cluster();
  simrt::VirtualCluster cluster(config, 8);

  cluster.allreduce(8.0, PhaseTag::kComm);
  const auto& stats = cluster.comm_stats();
  EXPECT_DOUBLE_EQ(stats.allreduces, 1.0);
  // Recursive doubling: p ranks × log₂ p stages messages.
  EXPECT_DOUBLE_EQ(stats.messages, 8.0 * 3.0);
  EXPECT_DOUBLE_EQ(stats.wire_bytes, 8.0 * 3.0 * 8.0);

  cluster.point_to_point(0, 5, 1024.0, PhaseTag::kComm);
  EXPECT_DOUBLE_EQ(stats.p2p_messages, 1.0);
  EXPECT_DOUBLE_EQ(stats.messages, 8.0 * 3.0 + 1.0);

  cluster.neighbor_gather(2, 3.0, 2048.0, PhaseTag::kReconstruct);
  EXPECT_DOUBLE_EQ(stats.gather_messages, 3.0);

  cluster.replica_fetch(1, 512.0, 2, PhaseTag::kReconstruct);
  EXPECT_DOUBLE_EQ(stats.replica_fetches, 2.0);
  EXPECT_DOUBLE_EQ(stats.max_contention, 1.0);  // flat network
}

// --- environment overlay ------------------------------------------------

TEST(NetEnvOverlayTest, MachineForHonorsNetEnvVars) {
  EnvGuard topo_guard("RSLS_NET_TOPOLOGY");
  EnvGuard coll_guard("RSLS_NET_COLLECTIVE");

  ::unsetenv("RSLS_NET_TOPOLOGY");
  ::unsetenv("RSLS_NET_COLLECTIVE");
  EXPECT_EQ(harness::machine_for(48).net.topology, TopologyKind::kFlat);

  ::setenv("RSLS_NET_TOPOLOGY", "fat-tree", 1);
  ::setenv("RSLS_NET_COLLECTIVE", "ring", 1);
  const simrt::MachineConfig machine = harness::machine_for(48);
  EXPECT_EQ(machine.net.topology, TopologyKind::kFatTree);
  EXPECT_EQ(machine.net.collective, CollectiveKind::kRing);

  // Garbage values keep the defaults instead of aborting the run.
  ::setenv("RSLS_NET_TOPOLOGY", "moebius", 1);
  ::setenv("RSLS_NET_COLLECTIVE", "gossip", 1);
  const simrt::MachineConfig fallback = harness::machine_for(48);
  EXPECT_EQ(fallback.net.topology, TopologyKind::kFlat);
  EXPECT_EQ(fallback.net.collective, CollectiveKind::kRecursiveDoubling);
}

TEST(NetEnvOverlayTest, ExplicitExperimentNetworkBeatsEnvironment) {
  EnvGuard topo_guard("RSLS_NET_TOPOLOGY");
  ::setenv("RSLS_NET_TOPOLOGY", "torus3d", 1);
  // machine_for picks up the env…
  EXPECT_EQ(harness::machine_for(8).net.topology, TopologyKind::kTorus3D);
  // …but an explicit ExperimentConfig::network pin must win; verified
  // through the interconnect of a cluster built the way run_scheme does.
  simrt::MachineConfig machine = harness::machine_for(8);
  NetworkConfig pinned;
  pinned.topology = TopologyKind::kFlat;
  machine.net = pinned;
  simrt::VirtualCluster cluster(machine, 8);
  EXPECT_STREQ(cluster.interconnect().topology().name(), "flat");
}

}  // namespace
}  // namespace rsls
