// Unit tests: local CG, spectrum estimation, and flop counts.

#include <gtest/gtest.h>

#include <cmath>

#include "core/error.hpp"
#include "la/condition.hpp"
#include "la/flops.hpp"
#include "la/local_cg.hpp"
#include "sparse/generators.hpp"
#include "sparse/vector_ops.hpp"

namespace rsls::la {
namespace {

SpdOperator csr_operator(const sparse::Csr& a) {
  return [&a](std::span<const Real> x, std::span<Real> y) {
    sparse::spmv(a, x, y);
  };
}

TEST(LocalCgTest, SolvesLaplacian) {
  const sparse::Csr a = sparse::laplacian_1d(50);
  RealVec x_true(50, 1.0);
  RealVec b(50);
  sparse::spmv(a, x_true, b);
  RealVec x(50, 0.0);
  LocalCgOptions options;
  options.tolerance = 1e-12;
  const auto result = local_cg(csr_operator(a), b, x, options);
  EXPECT_TRUE(result.converged);
  for (const Real v : x) {
    EXPECT_NEAR(v, 1.0, 1e-8);
  }
}

TEST(LocalCgTest, ConvergesWithinDimensionIterations) {
  // Exact-arithmetic CG terminates in ≤ n steps; allow slack for rounding.
  const sparse::Csr a = sparse::laplacian_1d(30);
  const RealVec b(30, 1.0);
  RealVec x(30, 0.0);
  LocalCgOptions options;
  options.tolerance = 1e-10;
  const auto result = local_cg(csr_operator(a), b, x, options);
  EXPECT_TRUE(result.converged);
  EXPECT_LE(result.iterations, 40);
}

TEST(LocalCgTest, RespectsMaxIterations) {
  const sparse::Csr a = sparse::laplacian_1d(100);
  const RealVec b(100, 1.0);
  RealVec x(100, 0.0);
  LocalCgOptions options;
  options.tolerance = 1e-14;
  options.max_iterations = 3;
  const auto result = local_cg(csr_operator(a), b, x, options);
  EXPECT_FALSE(result.converged);
  EXPECT_EQ(result.iterations, 3);
}

TEST(LocalCgTest, OperatorApplicationCount) {
  const sparse::Csr a = sparse::laplacian_1d(20);
  const RealVec b(20, 1.0);
  RealVec x(20, 0.0);
  LocalCgOptions options;
  options.tolerance = 1e-10;
  const auto result = local_cg(csr_operator(a), b, x, options);
  EXPECT_EQ(result.operator_applications, result.iterations + 1);
}

TEST(LocalCgTest, ZeroRhsConvergesImmediately) {
  const sparse::Csr a = sparse::laplacian_1d(10);
  const RealVec b(10, 0.0);
  RealVec x(10, 0.0);
  const auto result = local_cg(csr_operator(a), b, x, {});
  EXPECT_TRUE(result.converged);
  EXPECT_EQ(result.iterations, 0);
}

TEST(LocalCgTest, WarmStartConvergesFaster) {
  const sparse::Csr a = sparse::laplacian_1d(60);
  RealVec x_true(60, 2.0);
  RealVec b(60);
  sparse::spmv(a, x_true, b);
  LocalCgOptions options;
  options.tolerance = 1e-10;
  RealVec cold(60, 0.0);
  const auto cold_result = local_cg(csr_operator(a), b, cold, options);
  // Start essentially at the solution: only rounding separates them.
  RealVec warm(60, 2.0);
  warm[0] = 2.0 + 1e-9;
  const auto warm_result = local_cg(csr_operator(a), b, warm, options);
  EXPECT_LT(warm_result.iterations, cold_result.iterations);
}

TEST(LocalCgTest, IndefiniteOperatorThrows) {
  // Operator with a negative eigenvalue makes pᵀAp ≤ 0 quickly.
  const SpdOperator negate = [](std::span<const Real> x, std::span<Real> y) {
    for (std::size_t i = 0; i < x.size(); ++i) {
      y[i] = -x[i];
    }
  };
  const RealVec b(4, 1.0);
  RealVec x(4, 0.0);
  EXPECT_THROW(local_cg(negate, b, x, {}), Error);
}

TEST(LocalCgTest, EmptySystemConverges) {
  const RealVec b;
  RealVec x;
  const auto result = local_cg(
      [](std::span<const Real>, std::span<Real>) {}, b, x, {});
  EXPECT_TRUE(result.converged);
}

TEST(LocalCgTest, SizeMismatchThrows) {
  const RealVec b(3, 1.0);
  RealVec x(4, 0.0);
  EXPECT_THROW(
      local_cg([](std::span<const Real>, std::span<Real>) {}, b, x, {}),
      Error);
}

TEST(SpectrumTest, DiagonalMatrixExact) {
  const sparse::Csr a = sparse::diagonal_spd(64, 2.0, 50.0, 9);
  const auto est = estimate_spectrum(a, 400);
  EXPECT_NEAR(est.lambda_max, 50.0, 0.5);
  EXPECT_NEAR(est.lambda_min, 2.0, 0.5);
  EXPECT_NEAR(est.condition(), 25.0, 1.0);
}

TEST(SpectrumTest, RequiresSquare) {
  sparse::Csr a;
  a.rows = 2;
  a.cols = 3;
  a.row_ptr = {0, 0, 0};
  EXPECT_THROW(estimate_spectrum(a), Error);
}

TEST(FlopsTest, ClosedForms) {
  EXPECT_DOUBLE_EQ(lu_factor_flops(3), 18.0);
  EXPECT_DOUBLE_EQ(lu_solve_flops(3), 18.0);
  EXPECT_DOUBLE_EQ(cholesky_flops(3), 9.0);
  EXPECT_DOUBLE_EQ(qr_factor_flops(6, 3), 2.0 * 9.0 * 5.0);
  EXPECT_DOUBLE_EQ(qr_solve_flops(6, 3), 72.0);
  EXPECT_DOUBLE_EQ(spmv_flops(100), 200.0);
  EXPECT_DOUBLE_EQ(cg_iteration_flops(100, 10), 300.0);
  EXPECT_DOUBLE_EQ(lsi_cg_iteration_flops(100, 10, 20), 540.0);
}

TEST(FlopsTest, LuDominatesCgForLargeBlocks) {
  // The §4.1 motivation: exact LU costs m³-class work, CG-based
  // construction costs iterations × nnz-class work.
  const Index m = 512;
  const Index nnz = m * 10;
  const double lu = lu_factor_flops(m);
  const double cg100 = 100.0 * cg_iteration_flops(nnz, m);
  EXPECT_GT(lu, 10.0 * cg100);
}

}  // namespace
}  // namespace rsls::la
