// Property tests: bit-for-bit determinism (DESIGN.md §6.1) and
// energy-conservation invariants of the virtual cluster.

#include <gtest/gtest.h>

#include <cmath>

#include "harness/experiment.hpp"
#include "harness/scheme_factory.hpp"
#include "power/rapl.hpp"
#include "resilience/fault.hpp"
#include "sparse/generators.hpp"
#include "sparse/roster.hpp"

namespace rsls {
namespace {

using power::Activity;
using power::PhaseTag;

harness::SchemeRun run_once(const std::string& scheme,
                            bool flight_recorder = false) {
  const sparse::Csr a = sparse::banded_spd({192, 4, 1.0, 0.02, 1.0, 77});
  const auto workload = harness::Workload::create(a, 8);
  harness::ExperimentConfig config;
  config.processes = 8;
  config.faults = 6;
  config.scheme.cr_interval_iterations = 25;
  if (flight_recorder) {
    config.observability.enabled = true;
    config.observability.series = true;
    config.observability.per_rank = true;
  }
  const auto ff = harness::run_fault_free(workload, config);
  return harness::run_scheme(workload, scheme, config, ff);
}

// Determinism over schemes: the entire experiment — numerics, fault
// placement, virtual time, energy — must reproduce exactly across runs.
class DeterminismTest : public ::testing::TestWithParam<std::string> {};

TEST_P(DeterminismTest, ExactlyReproducible) {
  const auto first = run_once(GetParam());
  const auto second = run_once(GetParam());
  EXPECT_EQ(first.report.cg.iterations, second.report.cg.iterations);
  EXPECT_EQ(first.report.cg.relative_residual,
            second.report.cg.relative_residual);  // bitwise
  EXPECT_EQ(first.report.time, second.report.time);
  EXPECT_EQ(first.report.energy, second.report.energy);
  EXPECT_EQ(first.report.faults, second.report.faults);
}

INSTANTIATE_TEST_SUITE_P(Schemes, DeterminismTest,
                         ::testing::Values("RD", "F0", "LI", "LSI", "CR-D",
                                           "CR-2L"),
                         [](const auto& info) {
                           std::string name = info.param;
                           for (char& c : name) {
                             if (!std::isalnum(
                                     static_cast<unsigned char>(c))) {
                               c = '_';
                             }
                           }
                           return name;
                         });

// The default interconnect (flat network, recursive doubling) must
// reproduce the pre-net-layer charges bit-for-bit: an experiment that
// pins the default NetworkConfig explicitly must match one that never
// mentions the network at all, across the roster (DESIGN.md §12).
TEST(DeterminismTest, DefaultNetworkConfigIsBitIdenticalAcrossRoster) {
  const auto& entries = sparse::roster();
  ASSERT_GE(entries.size(), 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    const auto& entry = entries[i];
    const sparse::Csr a = entry.make(/*quick=*/true);
    const auto workload = harness::Workload::create(a, 8);
    harness::ExperimentConfig config;
    config.processes = 8;
    config.faults = 3;
    const auto ff_default = harness::run_fault_free(workload, config);
    const auto run_default =
        harness::run_scheme(workload, "LI", config, ff_default);

    harness::ExperimentConfig pinned = config;
    pinned.network = simrt::net::NetworkConfig{};
    const auto ff_pinned = harness::run_fault_free(workload, pinned);
    const auto run_pinned =
        harness::run_scheme(workload, "LI", pinned, ff_pinned);

    EXPECT_EQ(ff_default.time, ff_pinned.time) << entry.name;
    EXPECT_EQ(ff_default.energy, ff_pinned.energy) << entry.name;
    EXPECT_EQ(run_default.report.cg.iterations,
              run_pinned.report.cg.iterations)
        << entry.name;
    EXPECT_EQ(run_default.report.cg.relative_residual,
              run_pinned.report.cg.relative_residual)
        << entry.name;  // bitwise
    EXPECT_EQ(run_default.report.time, run_pinned.report.time) << entry.name;
    EXPECT_EQ(run_default.report.energy, run_pinned.report.energy)
        << entry.name;
  }
}

// Seed equivalence: with every resilience extension at its default
// (no failure domains, no spares, no retry budget, exponential/evenly
// spaced arrivals) the whole roster must charge bit-for-bit what the
// seed charged — and none of the new machinery may leave a trace: no
// kRecover energy, no attempts, no machine-level recovery counters.
TEST(DeterminismTest, DefaultConfigKeepsSeedChargesAcrossRoster) {
  for (const auto& scheme : harness::all_scheme_names()) {
    const auto first = run_once(scheme);
    const auto second = run_once(scheme);
    SCOPED_TRACE(scheme);
    EXPECT_EQ(first.report.cg.iterations, second.report.cg.iterations);
    EXPECT_EQ(first.report.cg.relative_residual,
              second.report.cg.relative_residual);  // bitwise
    EXPECT_EQ(first.report.time, second.report.time);
    EXPECT_EQ(first.report.energy, second.report.energy);
    EXPECT_EQ(first.report.status, resilience::SolveStatus::kConverged);
    EXPECT_EQ(first.report.account.core_energy(PhaseTag::kRecover), 0.0);
    EXPECT_EQ(first.report.recovery_attempts, 0);
    EXPECT_EQ(first.report.recovery_retries, 0);
    EXPECT_EQ(first.report.recovery_timeouts, 0);
    EXPECT_EQ(first.report.recoveries_struck, 0);
    EXPECT_EQ(first.report.spares_consumed, 0);
    EXPECT_EQ(first.report.spare_pool_dry, 0);
    EXPECT_EQ(first.report.shrink_events, 0);
    EXPECT_EQ(first.report.domain_faults, 0);
    // The realized schedule records the seed plan without altering it.
    EXPECT_EQ(first.report.fault_schedule.size(),
              static_cast<std::size_t>(first.report.faults));
  }
}

// The flight recorder is observation only: switching the per-iteration
// series and per-rank attribution on must leave every number of the run
// bit-identical to the default-off (seed) path, for every scheme.
TEST(DeterminismTest, FlightRecorderLeavesSeedNumbersBitIdentical) {
  for (const std::string scheme : {"RD", "LI", "CR-D"}) {
    SCOPED_TRACE(scheme);
    const auto off = run_once(scheme);
    const auto on = run_once(scheme, /*flight_recorder=*/true);
    EXPECT_EQ(off.report.cg.iterations, on.report.cg.iterations);
    EXPECT_EQ(off.report.cg.relative_residual,
              on.report.cg.relative_residual);  // bitwise
    EXPECT_EQ(off.report.time, on.report.time);
    EXPECT_EQ(off.report.energy, on.report.energy);
    EXPECT_EQ(off.report.faults, on.report.faults);
    EXPECT_TRUE(off.series.empty());
    EXPECT_FALSE(on.series.empty());
  }
}

TEST(EnergyConservationTest, TraceIntegralMatchesAccount) {
  // The binned power trace must conserve the charged core energy: the
  // integral of every node's profile equals core + sleep + node-constant
  // energy over the makespan.
  simrt::MachineConfig config = simrt::paper_node();
  simrt::VirtualCluster cluster(config, 24);
  cluster.enable_power_trace(1e-4);
  cluster.advance_all(0.01, Activity::kActive, PhaseTag::kSolve);
  cluster.charge_duration(3, 0.005, Activity::kActive, PhaseTag::kSolve);
  cluster.sync();
  cluster.write_disk(1e6, PhaseTag::kCheckpoint);

  const auto profile = cluster.node_power_profile(0);
  Joules integral = 0.0;
  for (const auto& sample : profile) {
    integral += sample.power * 1e-4;
  }
  // One node hosts all 24 ranks: the profile covers the whole machine.
  EXPECT_NEAR(integral, cluster.total_energy(),
              cluster.total_energy() * 0.02);
}

TEST(EnergyConservationTest, PhaseEnergiesSumToTotalCoreEnergy) {
  const sparse::Csr a = sparse::banded_spd({96, 3, 1.0, 0.05, 0.0, 3});
  const auto workload = harness::Workload::create(a, 8);
  harness::ExperimentConfig config;
  config.processes = 8;
  config.faults = 4;
  const auto ff = harness::run_fault_free(workload, config);
  const auto run = harness::run_scheme(workload, "LI-DVFS", config, ff);
  const auto& account = run.report.account;
  Joules sum = 0.0;
  for (std::size_t t = 0; t < power::kPhaseTagCount; ++t) {
    sum += account.core_energy(static_cast<power::PhaseTag>(t));
  }
  EXPECT_NEAR(sum, account.core_energy_total(), 1e-12);
}

TEST(EnergyConservationTest, EnergyBoundedByPowerEnvelope) {
  // Total energy can never exceed (all cores at max active power +
  // constants) × makespan, nor fall below the all-sleep floor.
  const sparse::Csr a = sparse::banded_spd({96, 3, 1.0, 0.05, 0.0, 4});
  const auto workload = harness::Workload::create(a, 16);
  harness::ExperimentConfig config;
  config.processes = 16;
  config.faults = 4;
  const auto ff = harness::run_fault_free(workload, config);
  for (const std::string scheme : {"F0", "LI", "CR-D"}) {
    const auto run = harness::run_scheme(workload, scheme, config, ff);
    const auto machine = harness::machine_for(16);
    const power::PowerModel model(machine.power);
    const double cores = static_cast<double>(machine.cores_per_node());
    const Watts node_max =
        cores * model.core_power(machine.power.freq.max_hz,
                                 power::Activity::kActive) +
        model.node_constant_power(machine.sockets_per_node);
    EXPECT_LE(run.report.energy, node_max * run.report.time * 1.001)
        << scheme;
    EXPECT_GT(run.report.energy, 0.0) << scheme;
  }
}

TEST(SdcCorruptionTest, ProducesFiniteGarbage) {
  const dist::Partition part(12, 3);
  RealVec x(12, 1.0);
  resilience::FaultInjector::corrupt_block_sdc(part, 1, x, 9);
  for (Index i = part.begin(1); i < part.end(1); ++i) {
    const Real v = x[static_cast<std::size_t>(i)];
    EXPECT_TRUE(std::isfinite(v));
    EXPECT_NE(v, 1.0);
  }
  // Other blocks untouched.
  EXPECT_DOUBLE_EQ(x[0], 1.0);
  EXPECT_DOUBLE_EQ(x[11], 1.0);
}

TEST(SdcCorruptionTest, RecoverySchemesHandleSdcLikeLoss) {
  // Detected SDC takes the same recovery path as data loss; every scheme
  // must converge whether the block is NaN or garbage.
  const sparse::Csr a = sparse::banded_spd({96, 3, 1.0, 0.05, 0.0, 5});
  const auto workload = harness::Workload::create(a, 8);
  harness::SchemeFactoryConfig factory;
  for (const std::string name : {"LI", "CR-M", "F0"}) {
    const auto scheme = harness::make_scheme(name, factory, workload.x0);
    simrt::VirtualCluster cluster(simrt::paper_node(), 8,
                                  scheme->replica_factor());
    RealVec x = workload.x0;
    bool injected = false;
    solver::CgOptions options;
    options.tolerance = 1e-12;
    const auto result = solver::cg_solve(
        workload.a, cluster, workload.b, x, options,
        [&](const solver::CgIterationView& view) {
          if (!injected && view.iteration == 8) {
            injected = true;
            resilience::FaultInjector::corrupt_block_sdc(
                workload.a.partition(), 2, view.x, 11);
            resilience::RecoveryContext ctx{workload.a, workload.b, cluster};
            return scheme->recover(ctx, view.iteration, 2, view.x);
          }
          return solver::HookAction::kContinue;
        });
    EXPECT_TRUE(result.converged) << name;
  }
}

}  // namespace
}  // namespace rsls
