// bench_diff library tests: artifact parsing for both families
// (BENCH_*.json results arrays, RunReport JSONL), tolerance gating,
// direction awareness, missing-entry gating, and refusal of
// schema/source mismatches — the contract the CI bench-diff job rests
// on (exit 0 clean / 1 regression / 2 not comparable).

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "bench_diff.hpp"

namespace rsls::tools {
namespace {

std::string bench_artifact(double spmv_time, double rate, double energy) {
  std::ostringstream os;
  os << "{\"schema_version\":1,\"source\":\"micro_kernels\",\"results\":["
     << "{\"name\":\"BM_Spmv/1024\",\"iterations\":100,\"real_time_s\":"
     << spmv_time << ",\"counters\":{\"items_per_second\":" << rate << "}},"
     << "{\"name\":\"BM_Dot/1024\",\"real_time_s\":2e-6,\"counters\":"
     << "{\"energy_j\":" << energy << "}}]}";
  return os.str();
}

std::string report_artifact(double time_s, double solve_j) {
  std::ostringstream os;
  os << "{\"schema_version\":1,\"source\":\"harness\",\"matrix\":\"m1\","
     << "\"scheme\":\"LI\",\"results\":{\"iterations\":500,\"time_s\":"
     << time_s << "},\"energy\":{\"phases\":{\"solve\":" << solve_j
     << "},\"total\":" << solve_j << "}}\n"
     << "{\"schema_version\":1,\"source\":\"harness\",\"matrix\":\"m1\","
     << "\"scheme\":\"CR\",\"results\":{\"iterations\":600,\"time_s\":"
     << time_s * 1.2 << "},\"energy\":{\"phases\":{\"solve\":" << solve_j
     << "},\"total\":" << solve_j << "}}\n";
  return os.str();
}

TEST(BenchDiffTest, IdenticalArtifactsAreClean) {
  const std::string text = bench_artifact(1e-5, 1e9, 0.5);
  const DiffResult result = diff_artifacts(text, text, {});
  EXPECT_TRUE(result.comparable);
  EXPECT_TRUE(result.ok());
  EXPECT_EQ(result.entries_compared, 2u);
  EXPECT_GT(result.metrics_compared, 0u);
  std::ostringstream os;
  EXPECT_EQ(render_diff(os, result), 0);
}

TEST(BenchDiffTest, SlowdownBeyondToleranceIsARegression) {
  const DiffResult result = diff_artifacts(bench_artifact(1e-5, 1e9, 0.5),
                                           bench_artifact(1.5e-5, 1e9, 0.5),
                                           {});
  EXPECT_TRUE(result.comparable);
  ASSERT_EQ(result.regressions.size(), 1u);
  EXPECT_EQ(result.regressions[0].metric, "real_time_s");
  EXPECT_GT(result.regressions[0].relative, 0.0);
  std::ostringstream os;
  EXPECT_EQ(render_diff(os, result), 1);
}

TEST(BenchDiffTest, SpeedupIsAnImprovementNotARegression) {
  // Direction awareness: real_time_s shrinking and items_per_second
  // growing are both beneficial — out of tolerance but not gated.
  const DiffResult result = diff_artifacts(bench_artifact(1e-5, 1e9, 0.5),
                                           bench_artifact(5e-6, 2e9, 0.5),
                                           {});
  EXPECT_TRUE(result.ok());
  EXPECT_GE(result.improvements.size(), 2u);
}

TEST(BenchDiffTest, ThroughputDropIsARegression) {
  const DiffResult result = diff_artifacts(bench_artifact(1e-5, 1e9, 0.5),
                                           bench_artifact(1e-5, 5e8, 0.5),
                                           {});
  ASSERT_EQ(result.regressions.size(), 1u);
  EXPECT_EQ(result.regressions[0].metric, "counters.items_per_second");
  EXPECT_LT(result.regressions[0].relative, 0.0);
}

TEST(BenchDiffTest, PerMetricToleranceOverridesDefault) {
  DiffOptions options;
  options.tolerance = 0.05;
  options.metric_tolerance["real_time_s"] = 0.60;
  const DiffResult result = diff_artifacts(bench_artifact(1e-5, 1e9, 0.5),
                                           bench_artifact(1.5e-5, 1e9, 0.5),
                                           options);
  EXPECT_TRUE(result.ok());  // +50% < the 60% override
}

TEST(BenchDiffTest, SkippedMetricsAreNotCompared) {
  DiffOptions options;
  options.skip.push_back("real_time_s");
  const DiffResult result = diff_artifacts(bench_artifact(1e-5, 1e9, 0.5),
                                           bench_artifact(9e-5, 1e9, 0.5),
                                           options);
  EXPECT_TRUE(result.ok());
}

TEST(BenchDiffTest, MissingEntryGatesLikeARegression) {
  const std::string baseline = bench_artifact(1e-5, 1e9, 0.5);
  const std::string current =
      "{\"schema_version\":1,\"source\":\"micro_kernels\",\"results\":["
      "{\"name\":\"BM_Spmv/1024\",\"real_time_s\":1e-5,"
      "\"counters\":{\"items_per_second\":1e9}}]}";
  const DiffResult result = diff_artifacts(baseline, current, {});
  ASSERT_EQ(result.missing_entries.size(), 1u);
  EXPECT_EQ(result.missing_entries[0], "BM_Dot/1024");
  EXPECT_FALSE(result.ok());
  std::ostringstream os;
  EXPECT_EQ(render_diff(os, result), 1);
}

TEST(BenchDiffTest, SchemaVersionMismatchIsRefused) {
  const std::string v2 =
      "{\"schema_version\":2,\"source\":\"micro_kernels\",\"results\":["
      "{\"name\":\"BM_Spmv/1024\",\"real_time_s\":1e-5}]}";
  const DiffResult result =
      diff_artifacts(bench_artifact(1e-5, 1e9, 0.5), v2, {});
  EXPECT_FALSE(result.comparable);
  EXPECT_NE(result.error.find("schema_version"), std::string::npos);
  std::ostringstream os;
  EXPECT_EQ(render_diff(os, result), 2);
}

TEST(BenchDiffTest, SourceMismatchIsRefused) {
  const DiffResult result = diff_artifacts(bench_artifact(1e-5, 1e9, 0.5),
                                           report_artifact(1.0, 100.0), {});
  EXPECT_FALSE(result.comparable);
  EXPECT_NE(result.error.find("source"), std::string::npos);
}

TEST(BenchDiffTest, UnparsableInputIsRefused) {
  const DiffResult result =
      diff_artifacts("not json", bench_artifact(1e-5, 1e9, 0.5), {});
  EXPECT_FALSE(result.comparable);
  std::ostringstream os;
  EXPECT_EQ(render_diff(os, result), 2);
}

TEST(BenchDiffTest, RunReportJsonlEntriesKeyOnMatrixAndScheme) {
  const std::string text = report_artifact(1.0, 100.0);
  const DiffResult clean = diff_artifacts(text, text, {});
  EXPECT_TRUE(clean.ok());
  EXPECT_EQ(clean.entries_compared, 2u);  // m1/LI and m1/CR

  // More iterations and more solve energy both gate.
  const DiffResult worse =
      diff_artifacts(text, report_artifact(1.0, 150.0), {});
  EXPECT_FALSE(worse.ok());
  bool energy_gated = false;
  for (const Delta& delta : worse.regressions) {
    if (delta.metric == "energy.phases.solve") {
      energy_gated = true;
    }
  }
  EXPECT_TRUE(energy_gated);
}

TEST(BenchDiffTest, ZeroBaselineStaysBounded) {
  // (cur − base) / max(|base|, |cur|) keeps a 0 → x move at exactly
  // +100%, never infinite.
  const std::string base =
      "{\"schema_version\":1,\"source\":\"s\",\"results\":["
      "{\"name\":\"a\",\"counters\":{\"recover_energy_j\":0}}]}";
  const std::string cur =
      "{\"schema_version\":1,\"source\":\"s\",\"results\":["
      "{\"name\":\"a\",\"counters\":{\"recover_energy_j\":3.5}}]}";
  const DiffResult result = diff_artifacts(base, cur, {});
  ASSERT_EQ(result.regressions.size(), 1u);
  EXPECT_DOUBLE_EQ(result.regressions[0].relative, 1.0);
}

}  // namespace
}  // namespace rsls::tools
