// Unit tests: the Jacobi-PCG solver variant — numerics, cost accounting,
// and compatibility with the recovery hooks.

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "core/error.hpp"
#include "dist/dist_matrix.hpp"
#include "harness/experiment.hpp"
#include "harness/scheme_factory.hpp"
#include "resilience/resilient_solve.hpp"
#include "solver/cg.hpp"
#include "sparse/coo.hpp"
#include "sparse/generators.hpp"
#include "sparse/roster.hpp"

namespace rsls::solver {
namespace {

CgOptions pcg_options(Preconditioner& precond) {
  CgOptions options;
  options.preconditioner = &precond;
  return options;
}

TEST(PcgTest, SolvesToSameTolerance) {
  const dist::DistMatrix a(sparse::laplacian_2d(10, 10), 4);
  simrt::VirtualCluster cluster(simrt::paper_node(), 4);
  const RealVec b = sparse::make_rhs(a.global());
  RealVec x(100, 0.0);
  const auto jacobi = make_preconditioner("jacobi");
  const auto result = cg_solve(a, cluster, b, x, pcg_options(*jacobi));
  EXPECT_TRUE(result.converged);
  EXPECT_LE(result.relative_residual, 1e-12);
  for (const Real v : x) {
    EXPECT_NEAR(v, 1.0, 1e-8);
  }
}

TEST(PcgTest, FewerIterationsOnScaledMatrix) {
  // Jacobi preconditioning undoes diagonal scaling, the dominant
  // ill-conditioning mechanism of the "structural" roster class.
  const sparse::Csr a = sparse::banded_spd({512, 4, 1.0, 0.02, 2.0, 13});
  const dist::DistMatrix dist_a(a, 8);
  const RealVec b = sparse::make_rhs(a);

  simrt::VirtualCluster cg_cluster(simrt::paper_node(), 8);
  RealVec x_cg(512, 0.0);
  const auto cg = cg_solve(dist_a, cg_cluster, b, x_cg, {});

  simrt::VirtualCluster pcg_cluster(simrt::paper_node(), 8);
  RealVec x_pcg(512, 0.0);
  const auto jacobi = make_preconditioner("jacobi");
  const auto pcg = cg_solve(dist_a, pcg_cluster, b, x_pcg,
                            pcg_options(*jacobi));

  EXPECT_TRUE(cg.converged);
  EXPECT_TRUE(pcg.converged);
  EXPECT_LT(pcg.iterations, cg.iterations / 2);
}

TEST(PcgTest, CostsChargedForPreconditionerAndNormCheck) {
  // PCG does strictly more per-iteration work (M⁻¹ apply + true-residual
  // reduction); for the SAME iteration count it must cost more time.
  const dist::DistMatrix a(sparse::laplacian_2d(8, 8), 4);
  const RealVec b = sparse::make_rhs(a.global());
  // For the plain Laplacian, Jacobi is a constant scaling: identical
  // iteration counts, so the comparison isolates the per-iteration cost.
  simrt::VirtualCluster cg_cluster(simrt::paper_node(), 4);
  RealVec x1(64, 0.0);
  const auto cg = cg_solve(a, cg_cluster, b, x1, {});
  simrt::VirtualCluster pcg_cluster(simrt::paper_node(), 4);
  RealVec x2(64, 0.0);
  const auto jacobi = make_preconditioner("jacobi");
  const auto pcg = cg_solve(a, pcg_cluster, b, x2, pcg_options(*jacobi));
  EXPECT_EQ(pcg.iterations, cg.iterations);
  EXPECT_GT(pcg_cluster.elapsed(), cg_cluster.elapsed());
}

TEST(PcgTest, RejectsNonPositiveDiagonal) {
  sparse::CooBuilder builder(2, 2);
  builder.add(0, 0, 1.0);
  builder.add(1, 1, 0.0);
  builder.add_symmetric(0, 1, 0.1);
  // Explicit zero diagonal entries are dropped in CSR, so at(1,1) == 0.
  const dist::DistMatrix a(builder.to_csr(), 2);
  simrt::VirtualCluster cluster(simrt::paper_node(), 2);
  const RealVec b = {1.0, 1.0};
  RealVec x(2, 0.0);
  const auto jacobi = make_preconditioner("jacobi");
  EXPECT_THROW(cg_solve(a, cluster, b, x, pcg_options(*jacobi)), Error);
}

TEST(PcgTest, ResidualHistoryTracksTrueResidual) {
  const dist::DistMatrix a(sparse::laplacian_2d(6, 6), 4);
  simrt::VirtualCluster cluster(simrt::paper_node(), 4);
  const RealVec b = sparse::make_rhs(a.global());
  RealVec x(36, 0.0);
  const auto jacobi = make_preconditioner("jacobi");
  CgOptions options = pcg_options(*jacobi);
  options.record_residual_history = true;
  const auto result = cg_solve(a, cluster, b, x, options);
  EXPECT_EQ(result.residual_history.size(),
            static_cast<std::size_t>(result.iterations) + 1);
  // Final recorded value must equal the reported true relative residual.
  EXPECT_NEAR(result.residual_history.back(), result.relative_residual,
              1e-15);
}

TEST(PcgTest, RecoverySchemesWorkUnchanged) {
  const sparse::Csr a = sparse::banded_spd({192, 4, 1.0, 0.02, 1.5, 21});
  const auto workload = harness::Workload::create(a, 8);
  harness::ExperimentConfig config;
  config.processes = 8;
  config.faults = 5;
  config.scheme.cr_interval_iterations = 20;
  config.preconditioner = "jacobi";
  const auto ff = harness::run_fault_free(workload, config);
  for (const std::string scheme : {"RD", "F0", "LI", "LSI", "CR-D"}) {
    const auto run = harness::run_scheme(workload, scheme, config, ff);
    EXPECT_TRUE(run.report.cg.converged) << scheme;
    EXPECT_EQ(run.report.recoveries, 5) << scheme;
  }
}

TEST(PcgTest, SchemeOrderingHoldsUnderPcg) {
  const sparse::Csr a = sparse::banded_spd({192, 4, 1.0, 0.02, 1.5, 21});
  const auto workload = harness::Workload::create(a, 8);
  harness::ExperimentConfig config;
  config.processes = 8;
  config.faults = 8;
  config.preconditioner = "jacobi";
  const auto ff = harness::run_fault_free(workload, config);
  const auto rd = harness::run_scheme(workload, "RD", config, ff);
  const auto li = harness::run_scheme(workload, "LI", config, ff);
  const auto f0 = harness::run_scheme(workload, "F0", config, ff);
  EXPECT_NEAR(rd.iteration_ratio, 1.0, 1e-9);
  EXPECT_LE(li.iteration_ratio, f0.iteration_ratio);
}

}  // namespace
}  // namespace rsls::solver
