// Unit + property tests: synthetic SPD generators. The SPD property is
// what every recovery scheme's correctness rests on, so it is verified
// across the whole generator parameter space with TEST_P sweeps.

#include <gtest/gtest.h>

#include <cmath>

#include "core/error.hpp"
#include "la/condition.hpp"
#include "la/factor.hpp"
#include "sparse/dense.hpp"
#include "sparse/generators.hpp"
#include "sparse/matrix_stats.hpp"

namespace rsls::sparse {
namespace {

/// SPD check for small matrices: dense Cholesky must succeed.
bool is_spd(const Csr& a) {
  if (!is_symmetric(a)) {
    return false;
  }
  try {
    la::Cholesky chol(to_dense(a));
    return true;
  } catch (const Error&) {
    return false;
  }
}

TEST(LaplacianTest, OneDimensionalStructure) {
  const Csr a = laplacian_1d(5);
  EXPECT_EQ(a.rows, 5);
  EXPECT_EQ(a.nnz(), 5 + 2 * 4);
  EXPECT_DOUBLE_EQ(a.at(0, 0), 2.0);
  EXPECT_DOUBLE_EQ(a.at(2, 1), -1.0);
  EXPECT_TRUE(is_spd(a));
}

TEST(LaplacianTest, OneDimensionalEigenvalues) {
  // λ_k = 2 - 2cos(kπ/(n+1)).
  const Index n = 50;
  const Csr a = laplacian_1d(n);
  const auto est = la::estimate_spectrum(a, 500);
  const double lambda_max =
      2.0 - 2.0 * std::cos(static_cast<double>(n) * M_PI /
                           static_cast<double>(n + 1));
  EXPECT_NEAR(est.lambda_max, lambda_max, 0.01);
}

TEST(LaplacianTest, TwoDimensionalFivePoint) {
  const Csr a = laplacian_2d(4, 3);
  EXPECT_EQ(a.rows, 12);
  EXPECT_DOUBLE_EQ(a.at(0, 0), 4.0);
  EXPECT_DOUBLE_EQ(a.at(0, 1), -1.0);   // east
  EXPECT_DOUBLE_EQ(a.at(0, 4), -1.0);   // north
  EXPECT_DOUBLE_EQ(a.at(0, 5), 0.0);    // no diagonal coupling
  EXPECT_TRUE(is_spd(a));
}

TEST(LaplacianTest, TwoDimensionalNinePoint) {
  const Csr a = laplacian_2d_9pt(4, 4);
  EXPECT_EQ(a.rows, 16);
  // Interior node couples to 8 neighbours + itself.
  const auto stats = compute_stats(a);
  EXPECT_EQ(stats.max_nnz_per_row, 9);
  EXPECT_TRUE(is_spd(a));
}

TEST(LaplacianTest, ThreeDimensionalSevenPoint) {
  const Csr a = laplacian_3d(3, 3, 3);
  EXPECT_EQ(a.rows, 27);
  EXPECT_DOUBLE_EQ(a.at(13, 13), 6.0);  // center node
  const auto stats = compute_stats(a);
  EXPECT_EQ(stats.max_nnz_per_row, 7);
  EXPECT_TRUE(is_spd(a));
}

TEST(FemTest, DimensionAndStructure) {
  const Csr a = fem_q1_2d(4, 5, 1);
  EXPECT_EQ(a.rows, 5 * 6);
  const auto stats = compute_stats(a);
  EXPECT_EQ(stats.max_nnz_per_row, 9);  // interior Q1 node
  EXPECT_TRUE(is_spd(a));
}

TEST(FemTest, DeterministicInSeed) {
  const Csr a = fem_q1_2d(6, 6, 42);
  const Csr b = fem_q1_2d(6, 6, 42);
  EXPECT_EQ(a.values, b.values);
  const Csr c = fem_q1_2d(6, 6, 43);
  EXPECT_NE(a.values, c.values);
}

TEST(FemTest, SmallerMassWeightIsHarder) {
  const Csr easy = fem_q1_2d(12, 12, 1, 1.0);
  const Csr hard = fem_q1_2d(12, 12, 1, 0.01);
  const auto est_easy = la::estimate_spectrum(easy, 300);
  const auto est_hard = la::estimate_spectrum(hard, 300);
  EXPECT_GT(est_hard.condition(), est_easy.condition());
}

TEST(BandedTest, RespectsBandwidth) {
  BandedSpdConfig config;
  config.n = 50;
  config.half_bandwidth = 3;
  config.diag_excess = 0.1;
  config.seed = 5;
  const Csr a = banded_spd(config);
  const auto stats = compute_stats(a);
  EXPECT_LE(stats.bandwidth, 3);
  EXPECT_TRUE(is_spd(a));
}

TEST(BandedTest, DiagonallyDominantWithoutScaling) {
  BandedSpdConfig config;
  config.n = 40;
  config.half_bandwidth = 4;
  config.diag_excess = 0.05;
  config.seed = 6;
  const auto stats = compute_stats(banded_spd(config));
  EXPECT_GE(stats.min_diag_dominance, 1.0 + 0.05 - 1e-9);
}

TEST(BandedTest, ScalingPreservesSpd) {
  BandedSpdConfig config;
  config.n = 40;
  config.half_bandwidth = 4;
  config.diag_excess = 0.05;
  config.scale_decades = 2.0;
  config.seed = 7;
  EXPECT_TRUE(is_spd(banded_spd(config)));
}

TEST(BandedTest, ScalingWorsensConditioning) {
  BandedSpdConfig base;
  base.n = 60;
  base.half_bandwidth = 4;
  base.diag_excess = 0.1;
  base.seed = 8;
  BandedSpdConfig scaled = base;
  scaled.scale_decades = 1.5;
  const auto est_base = la::estimate_spectrum(banded_spd(base), 300);
  const auto est_scaled = la::estimate_spectrum(banded_spd(scaled), 300);
  EXPECT_GT(est_scaled.condition(), 3.0 * est_base.condition());
}

TEST(BandedTest, PartialFillReducesNnz) {
  BandedSpdConfig full;
  full.n = 100;
  full.half_bandwidth = 6;
  full.diag_excess = 0.1;
  full.seed = 9;
  BandedSpdConfig sparse_band = full;
  sparse_band.fill = 0.3;
  EXPECT_LT(banded_spd(sparse_band).nnz(), banded_spd(full).nnz());
}

TEST(IrregularTest, HasLongRangeCoupling) {
  IrregularSpdConfig config;
  config.n = 200;
  config.extra_per_row = 5;
  config.diag_excess = 0.1;
  config.seed = 10;
  const Csr a = irregular_spd(config);
  const auto stats = compute_stats(a);
  EXPECT_GT(stats.bandwidth, 50);  // scattered coupling
  EXPECT_TRUE(is_spd(a));
}

TEST(IrregularTest, HighOffBlockCoupling) {
  IrregularSpdConfig irregular;
  irregular.n = 256;
  irregular.extra_per_row = 6;
  irregular.diag_excess = 0.1;
  irregular.seed = 11;
  BandedSpdConfig banded;
  banded.n = 256;
  banded.half_bandwidth = 3;
  banded.diag_excess = 0.1;
  banded.seed = 11;
  // For a 16-way partition, the irregular matrix couples blocks far more.
  EXPECT_GT(off_block_coupling(irregular_spd(irregular), 16),
            3.0 * off_block_coupling(banded_spd(banded), 16));
}

TEST(DiagonalSpdTest, SpectrumIsExact) {
  const Csr a = diagonal_spd(32, 0.5, 8.0, 3);
  const auto est = la::estimate_spectrum(a, 400);
  EXPECT_NEAR(est.lambda_max, 8.0, 0.1);
  EXPECT_NEAR(est.lambda_min, 0.5, 0.1);
}

TEST(DiagonalSpdTest, RejectsBadRange) {
  EXPECT_THROW(diagonal_spd(8, -1.0, 2.0, 1), Error);
  EXPECT_THROW(diagonal_spd(8, 3.0, 2.0, 1), Error);
}

TEST(DifficultyKnobTest, MonotoneInTarget) {
  EXPECT_GT(diag_excess_for_iterations(100.0),
            diag_excess_for_iterations(1000.0));
  EXPECT_THROW(diag_excess_for_iterations(0.5), Error);
}

// Property sweep: every generator family produces symmetric SPD matrices
// for a range of sizes and difficulty settings.
struct GeneratorCase {
  std::string name;
  std::function<Csr()> make;
};

class GeneratorSpdTest : public ::testing::TestWithParam<GeneratorCase> {};

TEST_P(GeneratorSpdTest, ProducesSymmetricSpd) {
  const Csr a = GetParam().make();
  validate(a);
  EXPECT_TRUE(is_symmetric(a));
  EXPECT_TRUE(is_spd(a)) << GetParam().name;
}

std::vector<GeneratorCase> generator_cases() {
  std::vector<GeneratorCase> cases;
  cases.push_back({"lap1d", [] { return laplacian_1d(17); }});
  cases.push_back({"lap2d", [] { return laplacian_2d(7, 5); }});
  cases.push_back({"lap2d9", [] { return laplacian_2d_9pt(6, 6); }});
  cases.push_back({"lap3d", [] { return laplacian_3d(3, 4, 2); }});
  cases.push_back({"fem", [] { return fem_q1_2d(5, 7, 21); }});
  cases.push_back({"fem_hard", [] { return fem_q1_2d(6, 6, 22, 0.01); }});
  for (const double excess : {0.5, 1e-2, 1e-4}) {
    for (const Index hb : {Index{1}, Index{5}, Index{12}}) {
      cases.push_back({"banded_hb" + std::to_string(hb),
                       [excess, hb] {
                         BandedSpdConfig c;
                         c.n = 64;
                         c.half_bandwidth = hb;
                         c.diag_excess = excess;
                         c.seed = static_cast<std::uint64_t>(hb) * 7 + 1;
                         return banded_spd(c);
                       }});
    }
  }
  for (const double decades : {0.0, 1.0, 2.5}) {
    cases.push_back({"irregular",
                     [decades] {
                       IrregularSpdConfig c;
                       c.n = 96;
                       c.extra_per_row = 4;
                       c.diag_excess = 1e-3;
                       c.scale_decades = decades;
                       c.seed = 31;
                       return irregular_spd(c);
                     }});
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(AllGenerators, GeneratorSpdTest,
                         ::testing::ValuesIn(generator_cases()),
                         [](const auto& info) {
                           return info.param.name + "_" +
                                  std::to_string(info.index);
                         });

}  // namespace
}  // namespace rsls::sparse
