// Unit tests: the streaming JsonValue writer (obs::write_json /
// obs::to_string) — value → text → parse_json round-trips, scalar
// formatting parity with JsonWriter, and stable key ordering so serve
// responses are byte-deterministic.

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <sstream>
#include <string>

#include "obs/json.hpp"

namespace rsls::obs {
namespace {

JsonValue sample_document() {
  JsonObject nested;
  nested.insert_or_assign("pi", JsonValue::make_number(3.141592653589793));
  nested.insert_or_assign("tiny", JsonValue::make_number(1e-9));
  nested.insert_or_assign("flag", JsonValue::make_bool(true));
  JsonArray list;
  list.push_back(JsonValue::make_number(1));
  list.push_back(JsonValue::make_string("two\nlines \"quoted\""));
  list.push_back(JsonValue::make_null());
  list.push_back(JsonValue::make_object(nested));
  JsonObject root;
  root.insert_or_assign("label", JsonValue::make_string("CR-M"));
  root.insert_or_assign("items", JsonValue::make_array(std::move(list)));
  root.insert_or_assign("empty_array", JsonValue::make_array({}));
  root.insert_or_assign("empty_object", JsonValue::make_object({}));
  root.insert_or_assign("count", JsonValue::make_number(42));
  return JsonValue::make_object(std::move(root));
}

TEST(JsonStreamTest, RoundTripsThroughParseJson) {
  const JsonValue original = sample_document();
  const std::string text = to_string(original);
  const JsonValue reparsed = parse_json(text);

  EXPECT_EQ(reparsed.at("label").as_string(), "CR-M");
  EXPECT_EQ(reparsed.at("count").as_number(), 42.0);
  EXPECT_TRUE(reparsed.at("empty_array").as_array().empty());
  EXPECT_TRUE(reparsed.at("empty_object").as_object().empty());
  const JsonArray& items = reparsed.at("items").as_array();
  ASSERT_EQ(items.size(), 4u);
  EXPECT_EQ(items[0].as_number(), 1.0);
  EXPECT_EQ(items[1].as_string(), "two\nlines \"quoted\"");
  EXPECT_TRUE(items[2].is_null());
  // Doubles survive bitwise: shortest-round-trip formatting.
  EXPECT_EQ(items[3].at("pi").as_number(), 3.141592653589793);
  EXPECT_EQ(items[3].at("tiny").as_number(), 1e-9);
  EXPECT_TRUE(items[3].at("flag").as_bool());

  // And the re-serialized text is identical: JsonObject is an ordered
  // map, so write → parse → write is a fixed point.
  EXPECT_EQ(to_string(reparsed), text);
}

TEST(JsonStreamTest, StreamsIncrementallyToOstream) {
  // write_json targets the stream directly; interleaving writes around
  // it (the chunked-event pattern in serve) must compose verbatim.
  std::ostringstream os;
  os << "event: ";
  write_json(os, sample_document());
  os << "\n";
  const std::string line = os.str();
  ASSERT_TRUE(line.rfind("event: {", 0) == 0);
  ASSERT_EQ(line.back(), '\n');
  const JsonValue reparsed =
      parse_json(line.substr(7, line.size() - 8));
  EXPECT_EQ(reparsed.at("count").as_number(), 42.0);
}

TEST(JsonStreamTest, ScalarFormattingMatchesJsonWriter) {
  EXPECT_EQ(to_string(JsonValue::make_null()), "null");
  EXPECT_EQ(to_string(JsonValue::make_bool(false)), "false");
  EXPECT_EQ(to_string(JsonValue::make_number(0.1)),
            JsonWriter::number(0.1));
  EXPECT_EQ(to_string(JsonValue::make_string("a\tb")),
            JsonWriter::quote("a\tb"));
  // Non-finite numbers degrade to null, same as JsonWriter.
  EXPECT_EQ(to_string(JsonValue::make_number(
                std::numeric_limits<double>::infinity())),
            "null");
  EXPECT_EQ(to_string(JsonValue::make_number(std::nan(""))), "null");
}

TEST(JsonStreamTest, ControlCharactersStayEscaped) {
  const std::string text =
      to_string(JsonValue::make_string(std::string("\x01\x1f ok", 4)));
  EXPECT_EQ(text, "\"\\u0001\\u001f o\"");
}

}  // namespace
}  // namespace rsls::obs
