// Unit tests: the observability metrics registry (counters, gauges,
// fixed-bucket histograms) and its snapshots.

#include <gtest/gtest.h>

#include "core/error.hpp"
#include "obs/metrics.hpp"

namespace rsls::obs {
namespace {

TEST(MetricsTest, CounterAccumulates) {
  MetricsRegistry registry;
  registry.counter("faults").add();
  registry.counter("faults").add(2.0);
  EXPECT_DOUBLE_EQ(registry.counter("faults").value(), 3.0);
  // A different name is a different counter.
  EXPECT_DOUBLE_EQ(registry.counter("recoveries").value(), 0.0);
}

TEST(MetricsTest, GaugeKeepsLastValue) {
  MetricsRegistry registry;
  registry.gauge("residual").set(1e-3);
  registry.gauge("residual").set(1e-9);
  EXPECT_DOUBLE_EQ(registry.gauge("residual").value(), 1e-9);
}

TEST(MetricsTest, HistogramBucketsAndOverflow) {
  Histogram histogram({1.0, 10.0, 100.0});
  histogram.observe(0.5);    // bucket 0: <= 1
  histogram.observe(1.0);    // bucket 0 (bounds are inclusive upper edges)
  histogram.observe(5.0);    // bucket 1
  histogram.observe(1000.0); // overflow bucket
  ASSERT_EQ(histogram.bucket_counts().size(), 4u);
  EXPECT_EQ(histogram.bucket_counts()[0], 2u);
  EXPECT_EQ(histogram.bucket_counts()[1], 1u);
  EXPECT_EQ(histogram.bucket_counts()[2], 0u);
  EXPECT_EQ(histogram.bucket_counts()[3], 1u);
  EXPECT_EQ(histogram.count(), 4u);
  EXPECT_DOUBLE_EQ(histogram.sum(), 1006.5);
  EXPECT_DOUBLE_EQ(histogram.min(), 0.5);
  EXPECT_DOUBLE_EQ(histogram.max(), 1000.0);
  EXPECT_DOUBLE_EQ(histogram.mean(), 1006.5 / 4.0);
}

TEST(MetricsTest, HistogramRejectsUnsortedBounds) {
  EXPECT_THROW(Histogram({10.0, 1.0}), Error);
  EXPECT_THROW(Histogram({1.0, 1.0}), Error);
  EXPECT_THROW(Histogram({}), Error);
}

TEST(MetricsTest, RegistryHistogramFindOrCreate) {
  MetricsRegistry registry;
  registry.histogram("recovery_seconds", {0.1, 1.0}).observe(0.05);
  // Second lookup returns the same histogram; bounds of an existing
  // histogram are kept.
  registry.histogram("recovery_seconds", {0.1, 1.0}).observe(0.5);
  const MetricsSnapshot snapshot = registry.snapshot();
  ASSERT_EQ(snapshot.histograms.size(), 1u);
  EXPECT_EQ(snapshot.histograms[0].name, "recovery_seconds");
  EXPECT_EQ(snapshot.histograms[0].count, 2u);
}

TEST(MetricsTest, SnapshotIsSortedAndComplete) {
  MetricsRegistry registry;
  registry.counter("z_last").add();
  registry.counter("a_first").add(5.0);
  registry.gauge("g").set(2.5);
  registry.histogram("h", {1.0}).observe(3.0);
  const MetricsSnapshot snapshot = registry.snapshot();
  EXPECT_FALSE(snapshot.empty());
  ASSERT_EQ(snapshot.counters.size(), 2u);
  // std::map iteration order: lexicographic by name.
  EXPECT_EQ(snapshot.counters[0].first, "a_first");
  EXPECT_DOUBLE_EQ(snapshot.counters[0].second, 5.0);
  EXPECT_EQ(snapshot.counters[1].first, "z_last");
  ASSERT_EQ(snapshot.gauges.size(), 1u);
  EXPECT_EQ(snapshot.gauges[0].first, "g");
  ASSERT_EQ(snapshot.histograms.size(), 1u);
  EXPECT_DOUBLE_EQ(snapshot.histograms[0].sum, 3.0);
}

TEST(MetricsTest, EmptySnapshot) {
  MetricsRegistry registry;
  EXPECT_TRUE(registry.snapshot().empty());
}

}  // namespace
}  // namespace rsls::obs
