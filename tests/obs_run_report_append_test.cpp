// Unit tests: append_run_report under concurrency — many threads
// appending distinct reports to one JSONL file must produce exactly one
// well-formed, non-interleaved line per report (O_APPEND single-write
// semantics).

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/json.hpp"
#include "obs/run_report.hpp"

namespace rsls::obs {
namespace {

/// Temp JSONL path removed on scope exit.
class TempFile {
 public:
  TempFile() {
    char buf[] = "/tmp/rsls_report_XXXXXX";
    const int fd = ::mkstemp(buf);
    EXPECT_GE(fd, 0);
    if (fd >= 0) {
      ::close(fd);
    }
    path_ = buf;
  }
  ~TempFile() { std::remove(path_.c_str()); }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

RunReport make_report(int id, std::size_t padding) {
  RunReport report;
  report.source = "append_test";
  report.matrix = "matrix-" + std::to_string(id);
  report.scheme = "CR-M";
  report.config.emplace_back("writer", std::to_string(id));
  // Bulk the line up so a torn write would have plenty of room to show:
  // each report carries `padding` result entries.
  for (std::size_t k = 0; k < padding; ++k) {
    report.results.emplace_back("metric_" + std::to_string(k),
                                static_cast<double>(id) + 0.25);
  }
  report.total_energy = static_cast<double>(id);
  return report;
}

TEST(RunReportAppendTest, ManyThreadsNeverInterleaveLines) {
  constexpr int kThreads = 16;
  constexpr int kReportsPerThread = 25;
  constexpr std::size_t kPadding = 200;  // ~6 KiB per line
  TempFile file;

  std::vector<std::thread> writers;
  writers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&file, t] {
      for (int r = 0; r < kReportsPerThread; ++r) {
        append_run_report(file.path(),
                          make_report(t * kReportsPerThread + r, kPadding));
      }
    });
  }
  for (auto& thread : writers) {
    thread.join();
  }

  // Every line parses as one complete report, and the union of ids is
  // exactly the set that was written (no losses, no duplicates, no
  // spliced fragments).
  std::ifstream in(file.path());
  ASSERT_TRUE(in.good());
  std::set<int> seen;
  std::string line;
  int lines = 0;
  while (std::getline(in, line)) {
    ++lines;
    const JsonValue doc = parse_json(line);
    const int id = std::stoi(doc.at("config").at("writer").as_string());
    EXPECT_TRUE(seen.insert(id).second) << "duplicate report id " << id;
    EXPECT_EQ(doc.at("matrix").as_string(), "matrix-" + std::to_string(id));
    EXPECT_EQ(doc.at("results").as_object().size(), kPadding);
    EXPECT_EQ(doc.at("energy").at("total").as_number(),
              static_cast<double>(id));
  }
  EXPECT_EQ(lines, kThreads * kReportsPerThread);
  EXPECT_EQ(seen.size(),
            static_cast<std::size_t>(kThreads * kReportsPerThread));
}

TEST(RunReportAppendTest, AppendsAcrossSeparateCalls) {
  TempFile file;
  append_run_report(file.path(), make_report(1, 3));
  append_run_report(file.path(), make_report(2, 3));
  std::ifstream in(file.path());
  std::string line;
  int lines = 0;
  while (std::getline(in, line)) {
    ++lines;
    parse_json(line);  // throws on malformed output
  }
  EXPECT_EQ(lines, 2);
}

TEST(RunReportAppendTest, ThrowsWhenPathUnwritable) {
  EXPECT_THROW(
      append_run_report("/nonexistent-dir/report.jsonl", make_report(0, 1)),
      Error);
}

}  // namespace
}  // namespace rsls::obs
