// Unit + property tests: deterministic RNG.

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "core/error.hpp"
#include "core/rng.hpp"

namespace rsls {
namespace {

TEST(RngTest, DeterministicForSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    same += a.next_u64() == b.next_u64() ? 1 : 0;
  }
  EXPECT_LT(same, 2);
}

TEST(RngTest, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, UniformRangeRespectsBounds) {
  Rng rng(8);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-3.0, 5.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(RngTest, UniformMeanIsHalf) {
  Rng rng(9);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    sum += rng.uniform();
  }
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(RngTest, UniformIndexCoversRange) {
  Rng rng(10);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.uniform_index(7);
    EXPECT_LT(v, 7u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);
}

TEST(RngTest, UniformIndexOneAlwaysZero) {
  Rng rng(11);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(rng.uniform_index(1), 0u);
  }
}

TEST(RngTest, UniformIndexZeroThrows) {
  Rng rng(12);
  EXPECT_THROW(rng.uniform_index(0), Error);
}

TEST(RngTest, NormalMoments) {
  Rng rng(13);
  const int n = 200000;
  double sum = 0.0, sum_sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double v = rng.normal();
    sum += v;
    sum_sq += v * v;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.02);
}

TEST(RngTest, NormalShiftScale) {
  Rng rng(14);
  const int n = 100000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) {
    sum += rng.normal(10.0, 2.0);
  }
  EXPECT_NEAR(sum / n, 10.0, 0.05);
}

TEST(RngTest, NormalRejectsNegativeStddev) {
  Rng rng(15);
  EXPECT_THROW(rng.normal(0.0, -1.0), Error);
}

TEST(RngTest, ExponentialMeanIsInverseRate) {
  Rng rng(16);
  const double rate = 4.0;
  const int n = 200000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) {
    const double v = rng.exponential(rate);
    EXPECT_GT(v, 0.0);
    sum += v;
  }
  EXPECT_NEAR(sum / n, 1.0 / rate, 0.01);
}

TEST(RngTest, ExponentialRejectsNonPositiveRate) {
  Rng rng(17);
  EXPECT_THROW(rng.exponential(0.0), Error);
  EXPECT_THROW(rng.exponential(-1.0), Error);
}

TEST(RngTest, SplitProducesIndependentStream) {
  Rng parent(18);
  Rng child = parent.split();
  // The child stream differs from the parent's continuation.
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    same += parent.next_u64() == child.next_u64() ? 1 : 0;
  }
  EXPECT_LT(same, 2);
}

TEST(RngTest, SplitIsDeterministic) {
  Rng a(19);
  Rng b(19);
  Rng child_a = a.split();
  Rng child_b = b.split();
  for (int i = 0; i < 16; ++i) {
    EXPECT_EQ(child_a.next_u64(), child_b.next_u64());
  }
}

}  // namespace
}  // namespace rsls
