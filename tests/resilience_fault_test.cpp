// Unit tests: fault injector schedules and corruption semantics.

#include <gtest/gtest.h>

#include <cmath>

#include "core/error.hpp"
#include "dist/partition.hpp"
#include "resilience/fault.hpp"

namespace rsls::resilience {
namespace {

TEST(FaultInjectorTest, NoneNeverFires) {
  auto injector = FaultInjector::none();
  for (Index k = 1; k < 1000; ++k) {
    EXPECT_FALSE(injector.check(k, static_cast<double>(k)).has_value());
  }
  EXPECT_EQ(injector.faults_injected(), 0);
}

TEST(FaultInjectorTest, EvenlySpacedCountAndPlacement) {
  auto injector = FaultInjector::evenly_spaced(10, 1100, 8, 42);
  IndexVec fired;
  for (Index k = 1; k <= 1100; ++k) {
    if (injector.check(k, 0.0).has_value()) {
      fired.push_back(k);
    }
  }
  ASSERT_EQ(fired.size(), 10u);
  // Faults at j·1100/11 = 100, 200, …, 1000.
  for (std::size_t j = 0; j < 10; ++j) {
    EXPECT_EQ(fired[j], static_cast<Index>((j + 1) * 100));
  }
  EXPECT_EQ(injector.faults_injected(), 10);
}

TEST(FaultInjectorTest, NoFaultsAtOrAfterFfIterations) {
  auto injector = FaultInjector::evenly_spaced(10, 50, 4, 1);
  Index last = 0;
  for (Index k = 1; k <= 500; ++k) {
    if (injector.check(k, 0.0).has_value()) {
      last = k;
    }
  }
  EXPECT_LT(last, 50);
}

TEST(FaultInjectorTest, FailedRanksInRange) {
  auto injector = FaultInjector::evenly_spaced(20, 2000, 6, 7);
  for (Index k = 1; k <= 2000; ++k) {
    if (const auto failed = injector.check(k, 0.0); failed.has_value()) {
      EXPECT_GE(*failed, 0);
      EXPECT_LT(*failed, 6);
    }
  }
}

TEST(FaultInjectorTest, DeterministicInSeed) {
  auto a = FaultInjector::evenly_spaced(5, 100, 8, 11);
  auto b = FaultInjector::evenly_spaced(5, 100, 8, 11);
  for (Index k = 1; k <= 100; ++k) {
    EXPECT_EQ(a.check(k, 0.0), b.check(k, 0.0));
  }
}

TEST(FaultInjectorTest, ZeroFaultsAllowed) {
  auto injector = FaultInjector::evenly_spaced(0, 100, 4, 1);
  for (Index k = 1; k <= 100; ++k) {
    EXPECT_FALSE(injector.check(k, 0.0).has_value());
  }
}

TEST(FaultInjectorTest, AtIterationsExactPlacement) {
  auto injector = FaultInjector::at_iterations({200}, 4, 3);
  for (Index k = 1; k < 200; ++k) {
    EXPECT_FALSE(injector.check(k, 0.0).has_value());
  }
  EXPECT_TRUE(injector.check(200, 0.0).has_value());
  EXPECT_FALSE(injector.check(201, 0.0).has_value());
}

TEST(FaultInjectorTest, AtIterationsRejectsUnsorted) {
  EXPECT_THROW(FaultInjector::at_iterations({10, 5}, 4, 1), Error);
  EXPECT_THROW(FaultInjector::at_iterations({0}, 4, 1), Error);
}

TEST(FaultInjectorTest, PoissonRateMatchesLambda) {
  const PerSecond lambda = 10.0;  // 10 faults per virtual second
  auto injector = FaultInjector::poisson(lambda, 8, 99);
  // Step virtual time in 1 ms increments for 100 s.
  Index fired = 0;
  for (Index step = 1; step <= 100000; ++step) {
    const Seconds now = static_cast<double>(step) * 1e-3;
    // Multiple arrivals within one step fire on later checks; count all.
    while (injector.check(step, now).has_value()) {
      ++fired;
    }
  }
  // Expect ≈ 1000 faults, Poisson stddev ≈ 32.
  EXPECT_NEAR(static_cast<double>(fired), 1000.0, 150.0);
}

TEST(FaultInjectorTest, PoissonRejectsBadRate) {
  EXPECT_THROW(FaultInjector::poisson(0.0, 4, 1), Error);
}

TEST(FaultInjectorTest, CorruptBlockPoisonsExactlyOneBlock) {
  const dist::Partition part(10, 3);
  RealVec x(10, 1.0);
  FaultInjector::corrupt_block(part, 1, x);
  for (Index i = 0; i < 10; ++i) {
    const bool in_block = i >= part.begin(1) && i < part.end(1);
    if (in_block) {
      EXPECT_TRUE(std::isnan(x[static_cast<std::size_t>(i)]));
    } else {
      EXPECT_DOUBLE_EQ(x[static_cast<std::size_t>(i)], 1.0);
    }
  }
}

TEST(FaultInjectorTest, CorruptBlockBoundsChecked) {
  const dist::Partition part(10, 3);
  RealVec x(10, 1.0);
  EXPECT_THROW(FaultInjector::corrupt_block(part, 3, x), Error);
  RealVec wrong_size(5, 1.0);
  EXPECT_THROW(FaultInjector::corrupt_block(part, 0, wrong_size), Error);
}

}  // namespace
}  // namespace rsls::resilience
