// Unit tests: fault injector schedules and corruption semantics.

#include <gtest/gtest.h>

#include <cmath>

#include "core/error.hpp"
#include "dist/partition.hpp"
#include "resilience/fault.hpp"

namespace rsls::resilience {
namespace {

TEST(FaultInjectorTest, NoneNeverFires) {
  auto injector = FaultInjector::none();
  for (Index k = 1; k < 1000; ++k) {
    EXPECT_FALSE(injector.check(k, static_cast<double>(k)).has_value());
  }
  EXPECT_EQ(injector.faults_injected(), 0);
}

TEST(FaultInjectorTest, EvenlySpacedCountAndPlacement) {
  auto injector = FaultInjector::evenly_spaced(10, 1100, 8, 42);
  IndexVec fired;
  for (Index k = 1; k <= 1100; ++k) {
    if (injector.check(k, 0.0).has_value()) {
      fired.push_back(k);
    }
  }
  ASSERT_EQ(fired.size(), 10u);
  // Faults at j·1100/11 = 100, 200, …, 1000.
  for (std::size_t j = 0; j < 10; ++j) {
    EXPECT_EQ(fired[j], static_cast<Index>((j + 1) * 100));
  }
  EXPECT_EQ(injector.faults_injected(), 10);
}

TEST(FaultInjectorTest, NoFaultsAtOrAfterFfIterations) {
  auto injector = FaultInjector::evenly_spaced(10, 50, 4, 1);
  Index last = 0;
  for (Index k = 1; k <= 500; ++k) {
    if (injector.check(k, 0.0).has_value()) {
      last = k;
    }
  }
  EXPECT_LT(last, 50);
}

TEST(FaultInjectorTest, FailedRanksInRange) {
  auto injector = FaultInjector::evenly_spaced(20, 2000, 6, 7);
  for (Index k = 1; k <= 2000; ++k) {
    if (const auto failed = injector.check(k, 0.0); failed.has_value()) {
      EXPECT_GE(*failed, 0);
      EXPECT_LT(*failed, 6);
    }
  }
}

TEST(FaultInjectorTest, DeterministicInSeed) {
  auto a = FaultInjector::evenly_spaced(5, 100, 8, 11);
  auto b = FaultInjector::evenly_spaced(5, 100, 8, 11);
  for (Index k = 1; k <= 100; ++k) {
    EXPECT_EQ(a.check(k, 0.0), b.check(k, 0.0));
  }
}

TEST(FaultInjectorTest, ZeroFaultsAllowed) {
  auto injector = FaultInjector::evenly_spaced(0, 100, 4, 1);
  for (Index k = 1; k <= 100; ++k) {
    EXPECT_FALSE(injector.check(k, 0.0).has_value());
  }
}

TEST(FaultInjectorTest, AtIterationsExactPlacement) {
  auto injector = FaultInjector::at_iterations({200}, 4, 3);
  for (Index k = 1; k < 200; ++k) {
    EXPECT_FALSE(injector.check(k, 0.0).has_value());
  }
  EXPECT_TRUE(injector.check(200, 0.0).has_value());
  EXPECT_FALSE(injector.check(201, 0.0).has_value());
}

TEST(FaultInjectorTest, AtIterationsRejectsUnsorted) {
  EXPECT_THROW(FaultInjector::at_iterations({10, 5}, 4, 1), Error);
  EXPECT_THROW(FaultInjector::at_iterations({0}, 4, 1), Error);
}

TEST(FaultInjectorTest, PoissonRateMatchesLambda) {
  const PerSecond lambda = 10.0;  // 10 faults per virtual second
  auto injector = FaultInjector::poisson(lambda, 8, 99);
  // Step virtual time in 1 ms increments for 100 s.
  Index fired = 0;
  for (Index step = 1; step <= 100000; ++step) {
    const Seconds now = static_cast<double>(step) * 1e-3;
    // Multiple arrivals within one step fire on later checks; count all.
    while (injector.check(step, now).has_value()) {
      ++fired;
    }
  }
  // Expect ≈ 1000 faults, Poisson stddev ≈ 32.
  EXPECT_NEAR(static_cast<double>(fired), 1000.0, 150.0);
}

TEST(FaultInjectorTest, PoissonRejectsBadRate) {
  EXPECT_THROW(FaultInjector::poisson(0.0, 4, 1), Error);
}

TEST(FaultInjectorTest, CorruptBlockPoisonsExactlyOneBlock) {
  const dist::Partition part(10, 3);
  RealVec x(10, 1.0);
  FaultInjector::corrupt_block(part, 1, x);
  for (Index i = 0; i < 10; ++i) {
    const bool in_block = i >= part.begin(1) && i < part.end(1);
    if (in_block) {
      EXPECT_TRUE(std::isnan(x[static_cast<std::size_t>(i)]));
    } else {
      EXPECT_DOUBLE_EQ(x[static_cast<std::size_t>(i)], 1.0);
    }
  }
}

TEST(FaultInjectorTest, CorruptBlockBoundsChecked) {
  const dist::Partition part(10, 3);
  RealVec x(10, 1.0);
  EXPECT_THROW(FaultInjector::corrupt_block(part, 3, x), Error);
  RealVec wrong_size(5, 1.0);
  EXPECT_THROW(FaultInjector::corrupt_block(part, 0, wrong_size), Error);
}

TEST(FaultInjectorTest, AtIterationsRejectsDuplicates) {
  EXPECT_THROW(FaultInjector::at_iterations({5, 5}, 4, 1), Error);
}

TEST(FaultInjectorTest, MultiRejectsMoreRanksThanRun) {
  EXPECT_THROW(FaultInjector::evenly_spaced_multi(2, 100, 5, 4, 1), Error);
  EXPECT_THROW(FaultInjector::evenly_spaced_multi(2, 100, 0, 4, 1), Error);
}

TEST(FaultInjectorTest, AtTimesFiresAgainstTheVirtualClock) {
  auto injector = FaultInjector::at_times({1.0, 2.5}, 4, 7);
  EXPECT_FALSE(injector.check(1, 0.5).has_value());
  EXPECT_TRUE(injector.check(2, 1.2).has_value());
  EXPECT_FALSE(injector.check(3, 1.3).has_value());
  EXPECT_TRUE(injector.check(4, 2.5).has_value());
  EXPECT_FALSE(injector.check(5, 99.0).has_value());
  EXPECT_EQ(injector.faults_injected(), 2);
}

TEST(FaultInjectorTest, AtTimesValidatesStamps) {
  EXPECT_THROW(FaultInjector::at_times({2.0, 1.0}, 4, 1), Error);
  EXPECT_THROW(FaultInjector::at_times({1.0, 1.0}, 4, 1), Error);
  EXPECT_THROW(FaultInjector::at_times({0.0}, 4, 1), Error);
}

TEST(SdcCorruptionTest, GarbageIsDeterministicPerSeed) {
  const dist::Partition part(64, 4);
  RealVec a(64, 1.0), b(64, 1.0);
  FaultInjector::corrupt_block_sdc(part, 2, a, 31);
  FaultInjector::corrupt_block_sdc(part, 2, b, 31);
  EXPECT_EQ(a, b);
  RealVec c(64, 1.0);
  FaultInjector::corrupt_block_sdc(part, 2, c, 32);
  EXPECT_NE(a, c);
}

TEST(SdcCorruptionTest, GarbageIsLargeButFiniteAndBlockLocal) {
  const dist::Partition part(64, 4);
  RealVec x(64, 1.0);
  FaultInjector::corrupt_block_sdc(part, 1, x, 5);
  for (Index i = 0; i < 64; ++i) {
    const Real v = x[static_cast<std::size_t>(i)];
    if (i >= part.begin(1) && i < part.end(1)) {
      EXPECT_TRUE(std::isfinite(v));
      EXPECT_GE(std::abs(v), 10.0);  // never subtle enough to be harmless
    } else {
      EXPECT_DOUBLE_EQ(v, 1.0);  // only the failed block is touched
    }
  }
}

TEST(SdcCorruptionTest, BitFlipsAreDeterministicAndBlockLocal) {
  const dist::Partition part(64, 4);
  RealVec a(64, 1.0), b(64, 1.0);
  FaultInjector::corrupt_block_bitflips(part, 3, a, 5, 17);
  FaultInjector::corrupt_block_bitflips(part, 3, b, 5, 17);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, RealVec(64, 1.0));  // at least one bit actually flipped
  for (Index i = 0; i < part.begin(3); ++i) {
    EXPECT_DOUBLE_EQ(a[static_cast<std::size_t>(i)], 1.0);
  }
}

TEST(SdcCorruptionTest, NextEventCarriesSdcMetadata) {
  auto injector = FaultInjector::at_iterations({10, 20}, 4, 3);
  injector.as_sdc(SdcMode::kBitFlip, SdcTarget::kResidual, /*bitflips=*/5);
  const auto none = injector.next_event(9, 0.0);
  EXPECT_FALSE(none.has_value());
  const auto first = injector.next_event(10, 0.0);
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(first->cls, FaultClass::kSilentCorruption);
  EXPECT_EQ(first->mode, SdcMode::kBitFlip);
  EXPECT_EQ(first->target, SdcTarget::kResidual);
  EXPECT_EQ(first->bitflips, 5);
  const auto second = injector.next_event(20, 0.0);
  ASSERT_TRUE(second.has_value());
  // Each event damages differently while staying deterministic overall.
  EXPECT_NE(first->corruption_seed, second->corruption_seed);
}

TEST(SdcCorruptionTest, DefaultEventsAreProcessLoss) {
  auto injector = FaultInjector::at_iterations({10}, 4, 3);
  const auto event = injector.next_event(10, 0.0);
  ASSERT_TRUE(event.has_value());
  EXPECT_EQ(event->cls, FaultClass::kProcessLoss);
}

TEST(SdcCorruptionTest, ApplyCorruptionHonoursClass) {
  const dist::Partition part(64, 4);
  FaultEvent event;
  event.ranks = {1};
  event.cls = FaultClass::kProcessLoss;
  RealVec x(64, 1.0);
  FaultInjector::apply_corruption(event, part, x);
  EXPECT_TRUE(std::isnan(x[static_cast<std::size_t>(part.begin(1))]));

  event.cls = FaultClass::kSilentCorruption;
  event.mode = SdcMode::kGarbage;
  event.corruption_seed = 7;
  RealVec y(64, 1.0);
  FaultInjector::apply_corruption(event, part, y);
  EXPECT_TRUE(std::isfinite(y[static_cast<std::size_t>(part.begin(1))]));
  EXPECT_GE(std::abs(y[static_cast<std::size_t>(part.begin(1))]), 10.0);
}

TEST(FaultInjectorTest, EvenlySpacedValidatesInputs) {
  EXPECT_THROW(FaultInjector::evenly_spaced(-1, 100, 4, 1), Error);
  EXPECT_THROW(FaultInjector::evenly_spaced(3, 0, 4, 1), Error);
}

TEST(WeibullInjectorTest, ShapeOneMatchesTheMtbfRate) {
  // k = 1 degenerates to the exponential law: over a long window the
  // fired count approaches window / MTBF whatever the draw path.
  auto injector = FaultInjector::weibull(0.1, 1.0, 8, 99);
  Index fired = 0;
  for (Index step = 1; step <= 100000; ++step) {
    const Seconds now = static_cast<double>(step) * 1e-3;
    while (injector.check(step, now).has_value()) {
      ++fired;
    }
  }
  EXPECT_NEAR(static_cast<double>(fired), 1000.0, 150.0);
}

TEST(WeibullInjectorTest, MeanGapIsShapeInvariant) {
  // The scale is mtbf / Γ(1 + 1/k), so the fired count over a long
  // window is roughly the same for wear-out and infant-mortality shapes.
  for (const double shape : {0.7, 2.0}) {
    auto injector = FaultInjector::weibull(0.1, shape, 8, 5);
    Index fired = 0;
    for (Index step = 1; step <= 100000; ++step) {
      const Seconds now = static_cast<double>(step) * 1e-3;
      while (injector.check(step, now).has_value()) {
        ++fired;
      }
    }
    EXPECT_NEAR(static_cast<double>(fired), 1000.0, 200.0) << shape;
  }
}

TEST(WeibullInjectorTest, DeterministicInSeed) {
  auto a = FaultInjector::weibull(0.05, 1.5, 8, 21);
  auto b = FaultInjector::weibull(0.05, 1.5, 8, 21);
  for (Index step = 1; step <= 2000; ++step) {
    const Seconds now = static_cast<double>(step) * 1e-3;
    EXPECT_EQ(a.check(step, now), b.check(step, now));
  }
  EXPECT_EQ(a.faults_injected(), b.faults_injected());
}

TEST(WeibullInjectorTest, ValidatesParameters) {
  EXPECT_THROW(FaultInjector::weibull(0.0, 1.0, 4, 1), Error);
  EXPECT_THROW(FaultInjector::weibull(-1.0, 1.0, 4, 1), Error);
  EXPECT_THROW(FaultInjector::weibull(0.1, 0.0, 4, 1), Error);
  EXPECT_THROW(FaultInjector::weibull(0.1, -2.0, 4, 1), Error);
}

TEST(BurstinessTest, CompressionClustersFaultsIntoStorms) {
  // With probability 1 every fired event compresses the next gap by
  // 100×: the same window holds far more faults than the plain law.
  auto plain = FaultInjector::weibull(0.5, 1.0, 8, 77);
  auto bursty = FaultInjector::weibull(0.5, 1.0, 8, 77);
  bursty.with_burstiness(1.0, 0.01);
  Index plain_fired = 0, bursty_fired = 0;
  for (Index step = 1; step <= 20000; ++step) {
    const Seconds now = static_cast<double>(step) * 1e-3;
    while (plain.check(step, now).has_value()) {
      ++plain_fired;
    }
    while (bursty.check(step, now).has_value()) {
      ++bursty_fired;
    }
  }
  EXPECT_GT(bursty_fired, plain_fired);
}

TEST(BurstinessTest, ValidatesParameters) {
  auto injector = FaultInjector::poisson(1.0, 4, 1);
  EXPECT_THROW(injector.with_burstiness(-0.1, 0.05), Error);
  EXPECT_THROW(injector.with_burstiness(1.5, 0.05), Error);
  EXPECT_THROW(injector.with_burstiness(0.5, 0.0), Error);
}

TEST(FailureDomainsTest, SyntheticGroupsCoverTheRankSpace) {
  const auto domains = FailureDomains::synthetic(10, 4);
  ASSERT_EQ(domains.count(), 3);
  EXPECT_EQ(domains.groups[0], (IndexVec{0, 1, 2, 3}));
  EXPECT_EQ(domains.groups[2], (IndexVec{8, 9}));  // remainder group
  EXPECT_EQ(domains.max_size(), 4);
  EXPECT_FALSE(domains.trivial());
  EXPECT_EQ(domains.domain_of(5), 1);
  EXPECT_THROW(domains.domain_of(10), Error);
}

TEST(FailureDomainsTest, SingletonsAreTrivial) {
  const auto domains = FailureDomains::singletons(4);
  EXPECT_EQ(domains.count(), 4);
  EXPECT_TRUE(domains.trivial());
}

TEST(FailureDomainsTest, ValidatesSize) {
  EXPECT_THROW(FailureDomains::synthetic(8, 0), Error);
  EXPECT_THROW(FailureDomains::synthetic(8, 9), Error);
}

TEST(FailureDomainsTest, FromTopologyGroupsFatTreeLeaves) {
  simrt::net::NetworkConfig config;
  config.topology = simrt::net::TopologyKind::kFatTree;
  config.fat_tree_radix = 4;
  const auto topology = simrt::net::make_topology(config, 16);
  const auto domains = FailureDomains::from_topology(*topology);
  ASSERT_EQ(domains.count(), 4);
  for (Index d = 0; d < 4; ++d) {
    ASSERT_EQ(domains.groups[static_cast<std::size_t>(d)].size(), 4u);
    for (const Index rank : domains.groups[static_cast<std::size_t>(d)]) {
      EXPECT_EQ(topology->failure_domain(rank), d);
    }
  }
}

TEST(FailureDomainsTest, DomainEventsKillWholeGroups) {
  auto injector = FaultInjector::evenly_spaced(2, 100, 8, 11);
  injector.with_domains(FailureDomains::synthetic(8, 4));
  Index events = 0;
  for (Index k = 1; k <= 100; ++k) {
    const auto event = injector.next_event(k, 0.0);
    if (!event.has_value()) {
      continue;
    }
    ++events;
    EXPECT_TRUE(event->domain_event);
    ASSERT_EQ(event->ranks.size(), 4u);
    // The group is one of the two synthetic domains, intact.
    EXPECT_TRUE(event->ranks == (IndexVec{0, 1, 2, 3}) ||
                event->ranks == (IndexVec{4, 5, 6, 7}));
  }
  EXPECT_EQ(events, 2);
  EXPECT_EQ(injector.domain_events(), 2);
  EXPECT_EQ(injector.faults_injected(), 8);  // ranks, not events
}

TEST(FailureDomainsTest, WithDomainsValidates) {
  auto injector = FaultInjector::evenly_spaced(1, 100, 8, 1);
  EXPECT_THROW(injector.with_domains(FailureDomains{}), Error);
  EXPECT_THROW(injector.with_domains(FailureDomains::synthetic(16, 4)),
               Error);  // ranks beyond this injector's run
}

TEST(ScheduleReplayTest, FromScheduleReproducesTheRealizedSequence) {
  auto original = FaultInjector::weibull(0.01, 0.8, 8, 123);
  original.with_burstiness(0.5, 0.05);
  original.with_domains(FailureDomains::synthetic(8, 2));
  std::vector<FaultEvent> fired;
  for (Index step = 1; step <= 5000; ++step) {
    const Seconds now = static_cast<double>(step) * 1e-4;
    while (true) {
      const auto event = original.next_event(step, now);
      if (!event.has_value()) {
        break;
      }
      fired.push_back(*event);
    }
  }
  ASSERT_FALSE(fired.empty());
  ASSERT_EQ(original.schedule().size(), fired.size());

  auto replay = FaultInjector::from_schedule(original.schedule(), 8);
  std::vector<FaultEvent> replayed;
  for (Index step = 1; step <= 5000; ++step) {
    const Seconds now = static_cast<double>(step) * 1e-4;
    while (true) {
      const auto event = replay.next_event(step, now);
      if (!event.has_value()) {
        break;
      }
      replayed.push_back(*event);
    }
  }
  ASSERT_EQ(replayed.size(), fired.size());
  for (std::size_t i = 0; i < fired.size(); ++i) {
    EXPECT_EQ(replayed[i].ranks, fired[i].ranks) << i;
    EXPECT_EQ(replayed[i].cls, fired[i].cls) << i;
    EXPECT_EQ(replayed[i].corruption_seed, fired[i].corruption_seed) << i;
    EXPECT_EQ(replayed[i].domain_event, fired[i].domain_event) << i;
  }
  // The replay's own realized schedule matches the original's.
  ASSERT_EQ(replay.schedule().size(), original.schedule().size());
  for (std::size_t i = 0; i < fired.size(); ++i) {
    EXPECT_EQ(replay.schedule()[i].ranks, original.schedule()[i].ranks) << i;
  }
  EXPECT_EQ(replay.domain_events(), original.domain_events());
}

TEST(ScheduleReplayTest, FromScheduleValidatesRecords) {
  FaultRecord good;
  good.time = 1.0;
  good.iteration = 10;
  good.ranks = {2};
  FaultRecord empty_ranks = good;
  empty_ranks.ranks.clear();
  EXPECT_THROW(FaultInjector::from_schedule({empty_ranks}, 4), Error);
  FaultRecord bad_rank = good;
  bad_rank.ranks = {4};
  EXPECT_THROW(FaultInjector::from_schedule({bad_rank}, 4), Error);
  FaultRecord earlier = good;
  earlier.time = 0.5;
  EXPECT_THROW(FaultInjector::from_schedule({good, earlier}, 4), Error);
}

}  // namespace
}  // namespace rsls::resilience
