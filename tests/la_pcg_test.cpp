// Unit tests: Jacobi-preconditioned local CG.

#include <gtest/gtest.h>

#include "core/error.hpp"
#include "la/local_cg.hpp"
#include "sparse/generators.hpp"
#include "sparse/roster.hpp"
#include "sparse/vector_ops.hpp"

namespace rsls::la {
namespace {

SpdOperator csr_operator(const sparse::Csr& a) {
  return [&a](std::span<const Real> x, std::span<Real> y) {
    sparse::spmv(a, x, y);
  };
}

RealVec inverse_diagonal(const sparse::Csr& a) {
  RealVec inv = sparse::diagonal(a);
  for (Real& v : inv) {
    v = 1.0 / v;
  }
  return inv;
}

TEST(LocalPcgTest, SolvesSameSystemAsCg) {
  const sparse::Csr a = sparse::laplacian_1d(40);
  RealVec x_true(40, 1.0);
  RealVec b(40);
  sparse::spmv(a, x_true, b);
  LocalCgOptions options;
  options.tolerance = 1e-12;
  RealVec x(40, 0.0);
  const auto result =
      local_pcg(csr_operator(a), inverse_diagonal(a), b, x, options);
  EXPECT_TRUE(result.converged);
  for (const Real v : x) {
    EXPECT_NEAR(v, 1.0, 1e-8);
  }
}

TEST(LocalPcgTest, PreconditioningUndoesDiagonalScaling) {
  // D·A·D is badly conditioned; Jacobi recovers A-level iteration counts.
  sparse::BandedSpdConfig config;
  config.n = 200;
  config.half_bandwidth = 3;
  config.diag_excess = 0.05;
  config.seed = 77;
  const sparse::Csr plain = sparse::banded_spd(config);
  config.scale_decades = 2.5;
  const sparse::Csr scaled = sparse::banded_spd(config);

  const RealVec b_plain = sparse::make_rhs(plain);
  const RealVec b_scaled = sparse::make_rhs(scaled);
  LocalCgOptions options;
  options.tolerance = 1e-10;
  options.max_iterations = 100000;

  RealVec x1(200, 0.0);
  const auto unpreconditioned =
      local_cg(csr_operator(scaled), b_scaled, x1, options);
  RealVec x2(200, 0.0);
  const auto preconditioned = local_pcg(
      csr_operator(scaled), inverse_diagonal(scaled), b_scaled, x2, options);
  RealVec x3(200, 0.0);
  const auto baseline = local_cg(csr_operator(plain), b_plain, x3, options);

  EXPECT_LT(preconditioned.iterations, unpreconditioned.iterations / 2);
  EXPECT_LT(preconditioned.iterations, 3 * baseline.iterations + 20);
}

TEST(LocalPcgTest, IdentityPreconditionerMatchesCg) {
  const sparse::Csr a = sparse::laplacian_1d(30);
  const RealVec b(30, 1.0);
  LocalCgOptions options;
  options.tolerance = 1e-10;
  RealVec x_cg(30, 0.0), x_pcg(30, 0.0);
  const RealVec ones(30, 1.0);
  const auto cg = local_cg(csr_operator(a), b, x_cg, options);
  const auto pcg = local_pcg(csr_operator(a), ones, b, x_pcg, options);
  EXPECT_EQ(pcg.iterations, cg.iterations);
  for (std::size_t i = 0; i < 30; ++i) {
    EXPECT_NEAR(x_pcg[i], x_cg[i], 1e-10);
  }
}

TEST(LocalPcgTest, RejectsNonPositivePreconditioner) {
  const sparse::Csr a = sparse::laplacian_1d(4);
  const RealVec b(4, 1.0);
  RealVec x(4, 0.0);
  RealVec bad(4, 1.0);
  bad[2] = 0.0;
  EXPECT_THROW(local_pcg(csr_operator(a), bad, b, x, {}), Error);
}

TEST(LocalPcgTest, SizeMismatchThrows) {
  const sparse::Csr a = sparse::laplacian_1d(4);
  const RealVec b(4, 1.0);
  RealVec x(4, 0.0);
  const RealVec wrong(3, 1.0);
  EXPECT_THROW(local_pcg(csr_operator(a), wrong, b, x, {}), Error);
}

TEST(LocalPcgTest, ZeroRhsImmediate) {
  const sparse::Csr a = sparse::laplacian_1d(8);
  const RealVec b(8, 0.0);
  RealVec x(8, 0.0);
  const auto result =
      local_pcg(csr_operator(a), inverse_diagonal(a), b, x, {});
  EXPECT_TRUE(result.converged);
  EXPECT_EQ(result.iterations, 0);
}

TEST(LocalPcgTest, MaxIterationsRespected) {
  const sparse::Csr a = sparse::laplacian_1d(100);
  const RealVec b(100, 1.0);
  RealVec x(100, 0.0);
  LocalCgOptions options;
  options.tolerance = 1e-14;
  options.max_iterations = 2;
  const auto result =
      local_pcg(csr_operator(a), inverse_diagonal(a), b, x, options);
  EXPECT_FALSE(result.converged);
  EXPECT_EQ(result.iterations, 2);
}

}  // namespace
}  // namespace rsls::la
