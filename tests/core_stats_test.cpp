// Unit tests: statistics helpers used for model fitting and aggregation.

#include <gtest/gtest.h>

#include <vector>

#include "core/error.hpp"
#include "core/stats.hpp"

namespace rsls {
namespace {

TEST(StatsTest, Mean) {
  const std::vector<double> v = {1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(mean(v), 2.5);
}

TEST(StatsTest, MeanRejectsEmpty) {
  const std::vector<double> v;
  EXPECT_THROW(mean(v), Error);
}

TEST(StatsTest, GeometricMean) {
  const std::vector<double> v = {1.0, 4.0};
  EXPECT_DOUBLE_EQ(geometric_mean(v), 2.0);
}

TEST(StatsTest, GeometricMeanOfEqualValues) {
  const std::vector<double> v = {3.0, 3.0, 3.0};
  EXPECT_NEAR(geometric_mean(v), 3.0, 1e-12);
}

TEST(StatsTest, GeometricMeanRejectsNonPositive) {
  const std::vector<double> v = {1.0, 0.0};
  EXPECT_THROW(geometric_mean(v), Error);
}

TEST(StatsTest, GeometricLeqArithmetic) {
  const std::vector<double> v = {1.0, 2.0, 9.0};
  EXPECT_LE(geometric_mean(v), mean(v));
}

TEST(StatsTest, SampleStddev) {
  const std::vector<double> v = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  EXPECT_NEAR(sample_stddev(v), 2.138, 1e-3);
}

TEST(StatsTest, StddevOfSingleIsZero) {
  const std::vector<double> v = {5.0};
  EXPECT_DOUBLE_EQ(sample_stddev(v), 0.0);
}

TEST(StatsTest, MinMax) {
  const std::vector<double> v = {3.0, -1.0, 7.0};
  EXPECT_DOUBLE_EQ(min_value(v), -1.0);
  EXPECT_DOUBLE_EQ(max_value(v), 7.0);
}

TEST(StatsTest, LineFitExact) {
  const std::vector<double> x = {0.0, 1.0, 2.0, 3.0};
  const std::vector<double> y = {1.0, 3.0, 5.0, 7.0};
  const LineFit fit = fit_line(x, y);
  EXPECT_NEAR(fit.slope, 2.0, 1e-12);
  EXPECT_NEAR(fit.intercept, 1.0, 1e-12);
  EXPECT_NEAR(fit.r_squared, 1.0, 1e-12);
  EXPECT_NEAR(evaluate(fit, 10.0), 21.0, 1e-12);
}

TEST(StatsTest, LineFitNoisy) {
  const std::vector<double> x = {0.0, 1.0, 2.0, 3.0};
  const std::vector<double> y = {0.1, 0.9, 2.1, 2.9};
  const LineFit fit = fit_line(x, y);
  EXPECT_NEAR(fit.slope, 1.0, 0.05);
  EXPECT_GT(fit.r_squared, 0.99);
}

TEST(StatsTest, LineFitFlatData) {
  const std::vector<double> x = {0.0, 1.0, 2.0};
  const std::vector<double> y = {5.0, 5.0, 5.0};
  const LineFit fit = fit_line(x, y);
  EXPECT_NEAR(fit.slope, 0.0, 1e-12);
  EXPECT_NEAR(fit.intercept, 5.0, 1e-12);
}

TEST(StatsTest, LineFitRejectsConstantX) {
  const std::vector<double> x = {1.0, 1.0};
  const std::vector<double> y = {1.0, 2.0};
  EXPECT_THROW(fit_line(x, y), Error);
}

TEST(StatsTest, LineFitRejectsSizeMismatch) {
  const std::vector<double> x = {1.0, 2.0, 3.0};
  const std::vector<double> y = {1.0, 2.0};
  EXPECT_THROW(fit_line(x, y), Error);
}

}  // namespace
}  // namespace rsls
