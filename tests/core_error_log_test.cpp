// Unit tests: error handling and logging.

#include <gtest/gtest.h>

#include "core/error.hpp"
#include "core/log.hpp"

namespace rsls {
namespace {

TEST(ErrorTest, CheckPassesOnTrue) {
  EXPECT_NO_THROW(RSLS_CHECK(1 + 1 == 2));
}

TEST(ErrorTest, CheckThrowsOnFalse) {
  EXPECT_THROW(RSLS_CHECK(1 == 2), Error);
}

TEST(ErrorTest, CheckMessageContainsExpression) {
  try {
    RSLS_CHECK(2 < 1);
    FAIL() << "expected throw";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("2 < 1"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("core_error_log_test.cpp"),
              std::string::npos);
  }
}

TEST(ErrorTest, CheckMsgAppendsContext) {
  try {
    RSLS_CHECK_MSG(false, "the context");
    FAIL() << "expected throw";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("the context"), std::string::npos);
  }
}

TEST(ErrorTest, ErrorIsRuntimeError) {
  // Callers may catch std::runtime_error generically.
  EXPECT_THROW(RSLS_CHECK(false), std::runtime_error);
}

TEST(LogTest, LevelFiltering) {
  const LogLevel original = log_level();
  set_log_level(LogLevel::kError);
  EXPECT_EQ(log_level(), LogLevel::kError);
  // Below-threshold messages are discarded without error.
  RSLS_DEBUG << "discarded";
  RSLS_INFO << "discarded";
  set_log_level(original);
}

TEST(LogTest, StreamingComposesTypes) {
  const LogLevel original = log_level();
  set_log_level(LogLevel::kError);
  RSLS_WARN << "value=" << 42 << " ratio=" << 1.5;  // filtered, must not throw
  set_log_level(original);
}

TEST(LogTest, LevelFromStringAcceptsNamesAndDigits) {
  EXPECT_EQ(log_level_from_string("debug"), LogLevel::kDebug);
  EXPECT_EQ(log_level_from_string("info"), LogLevel::kInfo);
  EXPECT_EQ(log_level_from_string("warn"), LogLevel::kWarn);
  EXPECT_EQ(log_level_from_string("warning"), LogLevel::kWarn);
  EXPECT_EQ(log_level_from_string("error"), LogLevel::kError);
  EXPECT_EQ(log_level_from_string("ERROR"), LogLevel::kError);
  EXPECT_EQ(log_level_from_string("Info"), LogLevel::kInfo);
  EXPECT_EQ(log_level_from_string("0"), LogLevel::kDebug);
  EXPECT_EQ(log_level_from_string("3"), LogLevel::kError);
}

TEST(LogTest, LevelFromStringRejectsGarbage) {
  EXPECT_EQ(log_level_from_string(""), std::nullopt);
  EXPECT_EQ(log_level_from_string("verbose"), std::nullopt);
  EXPECT_EQ(log_level_from_string("4"), std::nullopt);
  EXPECT_EQ(log_level_from_string("-1"), std::nullopt);
  EXPECT_EQ(log_level_from_string("2x"), std::nullopt);
}

TEST(LogTest, ExplicitLevelOverridesEnvironment) {
  // set_log_level wins over whatever RSLS_LOG_LEVEL said at first use.
  const LogLevel original = log_level();
  set_log_level(LogLevel::kDebug);
  EXPECT_EQ(log_level(), LogLevel::kDebug);
  set_log_level(original);
}

}  // namespace
}  // namespace rsls
