// Tier-1 tests: the SolverVariant / Preconditioner registry (DESIGN.md
// §16). The pipelined communication-hiding PCG must track classic CG's
// residual trajectory, hide allreduce time behind local work, expose its
// recurrence state to the recovery schemes, and reconstruct
// preconditioner + pipeline state under injected multi-rank loss for
// every scheme in the roster — all while the default configuration
// (classic CG, identity preconditioner) stays bit-identical to the seed.

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <string>
#include <vector>

#include "core/error.hpp"
#include "dist/dist_matrix.hpp"
#include "harness/experiment.hpp"
#include "harness/runner.hpp"
#include "harness/scheme_factory.hpp"
#include "resilience/fault.hpp"
#include "resilience/resilient_solve.hpp"
#include "solver/cg.hpp"
#include "sparse/generators.hpp"
#include "sparse/roster.hpp"

namespace rsls {
namespace {

using solver::CgOptions;
using solver::SolverVariant;

TEST(SolverVariantRegistryTest, NamesRoundTrip) {
  EXPECT_STREQ(solver::to_string(SolverVariant::kClassic), "cg");
  EXPECT_STREQ(solver::to_string(SolverVariant::kPipelined), "pipelined-cg");
  EXPECT_EQ(solver::solver_variant_from_name("cg"), SolverVariant::kClassic);
  EXPECT_EQ(solver::solver_variant_from_name("pipelined-cg"),
            SolverVariant::kPipelined);
  EXPECT_FALSE(solver::solver_variant_from_name("gmres").has_value());
  for (const std::string& name : solver::solver_variant_names()) {
    EXPECT_EQ(solver::to_string(solver::solver_variant_or_throw(name)), name);
  }
  EXPECT_EQ(CgOptions{}.variant, SolverVariant::kClassic);  // seed default
}

TEST(SolverVariantRegistryTest, UnknownNamesThrowWithRoster) {
  try {
    solver::solver_variant_or_throw("gmres");
    FAIL() << "expected Error";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("gmres"), std::string::npos) << what;
    EXPECT_NE(what.find("cg|pipelined-cg"), std::string::npos) << what;
  }
  try {
    solver::make_preconditioner("ilu");
    FAIL() << "expected Error";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("identity|jacobi|block-jacobi|ic0"),
              std::string::npos)
        << what;
  }
}

TEST(SolverVariantRegistryTest, EveryPreconditionerNameConstructs) {
  for (const std::string& name : solver::preconditioner_names()) {
    const auto precond = solver::make_preconditioner(name);
    ASSERT_NE(precond, nullptr) << name;
    EXPECT_EQ(precond->name(), name);
    EXPECT_EQ(precond->is_identity(), name == "identity");
  }
}

struct VariantRun {
  solver::CgResult result;
  RealVec x;
  Seconds elapsed = 0.0;
  simrt::net::CommStats comm;
};

VariantRun run_variant(const sparse::Csr& a, SolverVariant variant,
                       const std::string& precond_name = "identity",
                       Index parts = 8) {
  const dist::DistMatrix dist_a(a, parts);
  simrt::VirtualCluster cluster(simrt::paper_node(), parts);
  const RealVec b = sparse::make_rhs(a);
  VariantRun run;
  run.x.assign(static_cast<std::size_t>(a.rows), 0.0);
  const auto precond = solver::make_preconditioner(precond_name);
  CgOptions options;
  options.variant = variant;
  options.preconditioner = precond.get();
  options.record_residual_history = true;
  run.result = solver::cg_solve(dist_a, cluster, b, run.x, options);
  run.elapsed = cluster.elapsed();
  run.comm = cluster.comm_stats();
  return run;
}

// In exact arithmetic the Chronopoulos/Gear recurrences ARE classic CG;
// in floating point the trajectories drift apart only slowly. Both must
// converge to the same solution on the SPD fixtures, in comparable
// iteration counts, through residual trajectories that agree closely in
// the early (well-conditioned) phase.
TEST(PipelinedCgTest, MatchesClassicTrajectoryOnSpdFixtures) {
  const std::vector<sparse::Csr> fixtures = {
      sparse::laplacian_2d(12, 12),
      sparse::banded_spd({256, 4, 1.0, 0.02, 1.0, 31}),
  };
  for (const sparse::Csr& a : fixtures) {
    SCOPED_TRACE(a.rows);
    const VariantRun classic = run_variant(a, SolverVariant::kClassic);
    const VariantRun pipelined = run_variant(a, SolverVariant::kPipelined);
    ASSERT_TRUE(classic.result.converged);
    ASSERT_TRUE(pipelined.result.converged);
    EXPECT_LE(pipelined.result.relative_residual, 1e-12);
    // Same solution (both solve to ‖r‖/‖b‖ ≤ 1e-12).
    for (std::size_t i = 0; i < classic.x.size(); ++i) {
      EXPECT_NEAR(pipelined.x[i], classic.x[i], 1e-8);
    }
    // Comparable convergence speed: rounding may shift a few iterations.
    EXPECT_NEAR(static_cast<double>(pipelined.result.iterations),
                static_cast<double>(classic.result.iterations),
                0.1 * static_cast<double>(classic.result.iterations) + 3.0);
    // Early-phase trajectories agree point for point: rounding drift
    // grows with the iteration count, so compare on a log scale (within
    // half a decade over the first half of the run).
    const std::size_t prefix =
        std::min(classic.result.residual_history.size(),
                 pipelined.result.residual_history.size()) /
        2;
    for (std::size_t i = 0; i < prefix; ++i) {
      const Real c = classic.result.residual_history[i];
      const Real p = pipelined.result.residual_history[i];
      EXPECT_NEAR(std::log10(p), std::log10(c), 0.5) << "iteration " << i;
    }
  }
}

TEST(PipelinedCgTest, ConvergesUnderEveryPreconditioner) {
  const sparse::Csr a = sparse::banded_spd({256, 4, 1.0, 0.02, 2.0, 13});
  const VariantRun plain = run_variant(a, SolverVariant::kPipelined);
  ASSERT_TRUE(plain.result.converged);
  for (const std::string name : {"jacobi", "block-jacobi", "ic0"}) {
    SCOPED_TRACE(name);
    const VariantRun run = run_variant(a, SolverVariant::kPipelined, name);
    EXPECT_TRUE(run.result.converged);
    EXPECT_LE(run.result.relative_residual, 1e-12);
    // A real preconditioner on the diagonally-scaled fixture cuts the
    // iteration count, just as it does for the classic variant.
    EXPECT_LT(run.result.iterations, plain.result.iterations);
  }
}

TEST(PipelinedCgTest, HidesAllreduceTimeBehindLocalWork) {
  const sparse::Csr a = sparse::banded_spd({512, 6, 1.0, 0.02, 1.0, 5});
  const VariantRun classic = run_variant(a, SolverVariant::kClassic);
  const VariantRun pipelined = run_variant(a, SolverVariant::kPipelined);
  // The classic variant's reductions are all blocking: nothing hidden.
  EXPECT_EQ(classic.comm.allreduce_hidden_seconds, 0.0);
  EXPECT_GT(classic.comm.allreduce_exposed_seconds, 0.0);
  // The pipelined variant overlaps its fused reduction with the
  // preconditioner apply + SpMV: some of the collective must vanish
  // from the critical path.
  EXPECT_GT(pipelined.comm.allreduce_hidden_seconds, 0.0);
}

TEST(PipelinedCgTest, ExposesRecurrenceStateToHooks) {
  const sparse::Csr a = sparse::laplacian_2d(8, 8);
  const dist::DistMatrix dist_a(a, 4);
  simrt::VirtualCluster cluster(simrt::paper_node(), 4);
  const RealVec b = sparse::make_rhs(a);
  for (const auto variant :
       {SolverVariant::kClassic, SolverVariant::kPipelined}) {
    RealVec x(64, 0.0);
    CgOptions options;
    options.variant = variant;
    std::size_t extras_seen = 0;
    bool saw_hook = false;
    solver::cg_solve(dist_a, cluster, b, x, options,
                     [&](const solver::CgIterationView& view) {
                       saw_hook = true;
                       extras_seen = view.extra.size();
                       EXPECT_EQ(view.x.size(), 64u);
                       return solver::HookAction::kContinue;
                     });
    ASSERT_TRUE(saw_hook);
    // {u, w, s, q, z} for pipelined, none for classic.
    EXPECT_EQ(extras_seen,
              variant == SolverVariant::kPipelined ? 5u : 0u);
  }
}

// A hook-driven restart must rebuild the pipeline bundle from x: corrupt
// every exposed vector (but not x), request kRestart, and the solve must
// still converge to the true solution.
TEST(PipelinedCgTest, RestartRebuildsPipelineStateFromX) {
  const sparse::Csr a = sparse::laplacian_2d(10, 10);
  const dist::DistMatrix dist_a(a, 4);
  simrt::VirtualCluster cluster(simrt::paper_node(), 4);
  const RealVec b = sparse::make_rhs(a);
  RealVec x(100, 0.0);
  CgOptions options;
  options.variant = SolverVariant::kPipelined;
  bool corrupted = false;
  const auto result = solver::cg_solve(
      dist_a, cluster, b, x, options,
      [&](const solver::CgIterationView& view) {
        if (!corrupted && view.iteration == 5) {
          corrupted = true;
          for (Real& v : view.r) v = 1e9;
          for (Real& v : view.p) v = -1e9;
          for (const std::span<Real> extra : view.extra) {
            for (Real& v : extra) v = 7e8;
          }
          return solver::HookAction::kRestart;
        }
        return solver::HookAction::kContinue;
      });
  ASSERT_TRUE(corrupted);
  EXPECT_TRUE(result.converged);
  for (const Real v : x) {
    EXPECT_NEAR(v, 1.0, 1e-8);
  }
}

// ---------------------------------------------------------------------
// Recovery: every scheme in the roster must reconstruct preconditioner
// and pipeline state under injected loss, through the real harness path.

class PipelinedRecoveryTest
    : public ::testing::TestWithParam<std::string> {};

TEST_P(PipelinedRecoveryTest, SchemeRecoversPipelineAndPrecondState) {
  const sparse::Csr a = sparse::banded_spd({192, 4, 1.0, 0.02, 1.0, 77});
  const auto workload = harness::Workload::create(a, 8);
  harness::ExperimentConfig config;
  config.processes = 8;
  config.faults = 4;
  config.scheme.cr_interval_iterations = 25;
  config.solver = "pipelined-cg";
  config.preconditioner = "jacobi";
  const auto ff = harness::run_fault_free(workload, config);
  const auto run = harness::run_scheme(workload, GetParam(), config, ff);
  EXPECT_TRUE(run.report.cg.converged);
  EXPECT_EQ(run.report.recoveries, 4);
  EXPECT_LE(run.report.cg.relative_residual, config.tolerance);
}

INSTANTIATE_TEST_SUITE_P(AllSchemes, PipelinedRecoveryTest,
                         ::testing::ValuesIn(harness::all_scheme_names()),
                         [](const auto& info) {
                           std::string name = info.param;
                           for (char& c : name) {
                             if (!std::isalnum(
                                     static_cast<unsigned char>(c))) {
                               c = '_';
                             }
                           }
                           return name;
                         });

// Multi-rank LNF events (2 ranks at once) against the exact-recovery and
// rollback schemes: ESR must decode parity for every exposed pipeline
// vector, CR must reinstate its deep snapshot, LI must rebuild locally —
// each followed by a preconditioner rebuild on the failed ranks.
class PipelinedLnfTest : public ::testing::TestWithParam<std::string> {};

TEST_P(PipelinedLnfTest, TwoRankLossRecoversUnderPcg) {
  const sparse::Csr a = sparse::banded_spd({192, 4, 1.0, 0.02, 1.0, 21});
  const dist::DistMatrix dist_a(a, 8);
  const RealVec b = sparse::make_rhs(a);
  const RealVec x0(192, 0.0);

  harness::SchemeFactoryConfig factory;
  factory.cr_interval_iterations = 15;
  const auto precond = solver::make_preconditioner("jacobi");
  CgOptions options;
  options.variant = SolverVariant::kPipelined;
  options.preconditioner = precond.get();

  // Probe the fault-free iteration count to place the fault events.
  Index ff_iterations = 0;
  {
    const auto probe = harness::make_scheme("F0", factory, x0);
    simrt::VirtualCluster probe_cluster(simrt::paper_node(), 8);
    auto none = resilience::FaultInjector::none();
    RealVec x = x0;
    const auto report = resilience::resilient_solve(
        dist_a, probe_cluster, b, x, *probe, none, options);
    ff_iterations = report.cg.iterations;
  }

  const auto scheme = harness::make_scheme(GetParam(), factory, x0);
  simrt::VirtualCluster cluster(simrt::paper_node(), 8,
                                scheme->replica_factor());
  auto injector = resilience::FaultInjector::evenly_spaced_multi(
      3, ff_iterations, /*ranks_per_fault=*/2, 8, 13);
  RealVec x = x0;
  const auto report = resilience::resilient_solve(dist_a, cluster, b, x,
                                                  *scheme, injector, options);
  EXPECT_TRUE(report.cg.converged);
  EXPECT_EQ(report.faults, 6);  // 3 events × 2 ranks
  EXPECT_TRUE(std::isfinite(report.cg.relative_residual));
}

INSTANTIATE_TEST_SUITE_P(Schemes, PipelinedLnfTest,
                         ::testing::Values("ESR", "CR-D", "CR-M", "LI", "LSI",
                                           "RD", "TMR", "F0"),
                         [](const auto& info) {
                           std::string name = info.param;
                           for (char& c : name) {
                             if (!std::isalnum(
                                     static_cast<unsigned char>(c))) {
                               c = '_';
                             }
                           }
                           return name;
                         });

// ---------------------------------------------------------------------
// Determinism and seed equivalence.

TEST(SolverVariantDeterminismTest, ExplicitDefaultsMatchDefaultConfig) {
  // Pinning {"cg", "identity"} explicitly must charge bit-for-bit what
  // the untouched default config charges, across schemes.
  const sparse::Csr a = sparse::banded_spd({192, 4, 1.0, 0.02, 1.0, 77});
  const auto workload = harness::Workload::create(a, 8);
  for (const std::string scheme : {"RD", "LI", "ESR", "CR-D"}) {
    SCOPED_TRACE(scheme);
    harness::ExperimentConfig plain;
    plain.processes = 8;
    plain.faults = 4;
    harness::ExperimentConfig pinned = plain;
    pinned.solver = "cg";
    pinned.preconditioner = "identity";
    const auto ff_plain = harness::run_fault_free(workload, plain);
    const auto ff_pinned = harness::run_fault_free(workload, pinned);
    EXPECT_EQ(ff_plain.time, ff_pinned.time);
    EXPECT_EQ(ff_plain.energy, ff_pinned.energy);
    const auto run_plain =
        harness::run_scheme(workload, scheme, plain, ff_plain);
    const auto run_pinned =
        harness::run_scheme(workload, scheme, pinned, ff_pinned);
    EXPECT_EQ(run_plain.report.cg.iterations, run_pinned.report.cg.iterations);
    EXPECT_EQ(run_plain.report.cg.relative_residual,
              run_pinned.report.cg.relative_residual);  // bitwise
    EXPECT_EQ(run_plain.report.time, run_pinned.report.time);
    EXPECT_EQ(run_plain.report.energy, run_pinned.report.energy);
  }
}

TEST(SolverVariantDeterminismTest, PipelinedPcgBitIdenticalAcrossJobCounts) {
  // The Runner at 4 workers must reproduce the serial pipelined-PCG
  // sweep bit for bit — recovery included.
  harness::GroupSpec group;
  group.label = "pcg";
  group.config.processes = 8;
  group.config.faults = 3;
  group.config.scheme.cr_interval_iterations = 25;
  group.config.solver = "pipelined-cg";
  group.config.preconditioner = "jacobi";
  group.make_workload = [] {
    const sparse::Csr a = sparse::banded_spd({192, 4, 1.0, 0.02, 1.0, 42});
    return harness::Workload::create(a, 8, "banded");
  };
  for (const std::string scheme : {"RD", "LI", "ESR", "CR-D", "LSI"}) {
    group.cells.push_back({scheme, std::nullopt, nullptr});
  }
  harness::Runner serial(1);
  harness::Runner parallel(4);
  const auto a = serial.run_group(group);
  const auto b = parallel.run_group(group);
  EXPECT_EQ(a.ff.time, b.ff.time);
  EXPECT_EQ(a.ff.energy, b.ff.energy);
  ASSERT_EQ(a.runs.size(), b.runs.size());
  for (std::size_t i = 0; i < a.runs.size(); ++i) {
    EXPECT_EQ(a.runs[i].report.cg.iterations, b.runs[i].report.cg.iterations);
    EXPECT_EQ(a.runs[i].report.cg.relative_residual,
              b.runs[i].report.cg.relative_residual);  // bitwise
    EXPECT_EQ(a.runs[i].report.time, b.runs[i].report.time);
    EXPECT_EQ(a.runs[i].report.energy, b.runs[i].report.energy);
  }
}

// ---------------------------------------------------------------------
// Observability: the kPrecond phase must attribute exactly.

TEST(PrecondAttributionTest, PerRankPrecondEnergySumsToPhaseTotal) {
  const sparse::Csr a = sparse::banded_spd({192, 4, 1.0, 0.02, 1.5, 9});
  const auto workload = harness::Workload::create(a, 8);
  harness::ExperimentConfig config;
  config.processes = 8;
  config.faults = 2;
  config.preconditioner = "ic0";
  config.observability.enabled = true;
  config.observability.per_rank = true;
  config.observability.keep_report = true;
  const auto ff = harness::run_fault_free(workload, config);
  const auto run = harness::run_scheme(workload, "LI", config, ff);
  ASSERT_TRUE(run.report.cg.converged);

  const Joules total =
      run.report.account.core_energy(power::PhaseTag::kPrecond);
  ASSERT_GT(total, 0.0);  // setup + per-loss rebuilds are charged
  Joules sum = 0.0;
  ASSERT_NE(run.run_report, nullptr);
  ASSERT_FALSE(run.run_report->per_rank.empty());
  for (const obs::RankEnergy& rank : run.run_report->per_rank) {
    for (const auto& [phase, joules] : rank.phase_core_energy) {
      if (phase == power::to_string(power::PhaseTag::kPrecond)) {
        sum += joules;
      }
    }
  }
  EXPECT_NEAR(sum / total, 1.0, 1e-9);

  // And the identity path charges nothing to kPrecond (seed invariant).
  harness::ExperimentConfig plain;
  plain.processes = 8;
  plain.faults = 2;
  const auto ff_plain = harness::run_fault_free(workload, plain);
  const auto run_plain = harness::run_scheme(workload, "LI", plain, ff_plain);
  EXPECT_EQ(run_plain.report.account.core_energy(power::PhaseTag::kPrecond),
            0.0);
}

}  // namespace
}  // namespace rsls
