// Unit + property tests: RCM ordering and symmetric permutation.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "core/error.hpp"
#include "core/rng.hpp"
#include "la/condition.hpp"
#include "sparse/coo.hpp"
#include "sparse/generators.hpp"
#include "sparse/matrix_stats.hpp"
#include "sparse/ordering.hpp"

namespace rsls::sparse {
namespace {

IndexVec random_permutation(Index n, std::uint64_t seed) {
  Rng rng(seed);
  IndexVec perm(static_cast<std::size_t>(n));
  for (Index i = 0; i < n; ++i) {
    perm[static_cast<std::size_t>(i)] = i;
  }
  for (Index i = n - 1; i > 0; --i) {
    const auto j = static_cast<std::size_t>(
        rng.uniform_index(static_cast<std::uint64_t>(i) + 1));
    std::swap(perm[static_cast<std::size_t>(i)], perm[j]);
  }
  return perm;
}

TEST(PermutationTest, InvertRoundTrips) {
  const IndexVec perm = random_permutation(20, 3);
  const IndexVec inverse = invert_permutation(perm);
  for (std::size_t i = 0; i < perm.size(); ++i) {
    EXPECT_EQ(inverse[static_cast<std::size_t>(perm[i])],
              static_cast<Index>(i));
  }
}

TEST(PermutationTest, InvertRejectsDuplicates) {
  EXPECT_THROW(invert_permutation({0, 0, 1}), Error);
  EXPECT_THROW(invert_permutation({0, 5}), Error);
}

TEST(PermutationTest, PermuteVector) {
  const RealVec in = {10.0, 20.0, 30.0};
  const IndexVec perm = {2, 0, 1};
  const RealVec out = permute_vector(in, perm);
  EXPECT_DOUBLE_EQ(out[0], 30.0);
  EXPECT_DOUBLE_EQ(out[1], 10.0);
  EXPECT_DOUBLE_EQ(out[2], 20.0);
}

TEST(PermuteSymmetricTest, EntriesMoveCorrectly) {
  const Csr a = laplacian_1d(5);
  const IndexVec perm = random_permutation(5, 7);
  const Csr b = permute_symmetric(a, perm);
  for (Index i = 0; i < 5; ++i) {
    for (Index j = 0; j < 5; ++j) {
      EXPECT_DOUBLE_EQ(
          b.at(i, j),
          a.at(perm[static_cast<std::size_t>(i)],
               perm[static_cast<std::size_t>(j)]));
    }
  }
}

TEST(PermuteSymmetricTest, PreservesSymmetryAndSpectrum) {
  BandedSpdConfig config;
  config.n = 64;
  config.half_bandwidth = 4;
  config.diag_excess = 0.05;
  config.seed = 9;
  const Csr a = banded_spd(config);
  const Csr b = permute_symmetric(a, random_permutation(64, 11));
  EXPECT_TRUE(is_symmetric(b));
  const auto ea = la::estimate_spectrum(a, 300);
  const auto eb = la::estimate_spectrum(b, 300);
  EXPECT_NEAR(ea.lambda_max, eb.lambda_max, 0.02 * ea.lambda_max);
}

TEST(RcmTest, ReturnsValidPermutation) {
  const Csr a = laplacian_2d(6, 6);
  const IndexVec perm = rcm_ordering(a);
  ASSERT_EQ(perm.size(), 36u);
  std::set<Index> seen(perm.begin(), perm.end());
  EXPECT_EQ(seen.size(), 36u);
  EXPECT_EQ(*seen.begin(), 0);
  EXPECT_EQ(*seen.rbegin(), 35);
}

TEST(RcmTest, RecoversShuffledBand) {
  // The canonical RCM result: a shuffled banded matrix returns to (near)
  // its original bandwidth.
  BandedSpdConfig config;
  config.n = 200;
  config.half_bandwidth = 3;
  config.diag_excess = 0.1;
  config.seed = 5;
  const Csr banded = banded_spd(config);
  const Csr shuffled = permute_symmetric(banded, random_permutation(200, 6));
  EXPECT_GT(compute_stats(shuffled).bandwidth, 50);
  const Csr recovered = permute_symmetric(shuffled, rcm_ordering(shuffled));
  EXPECT_LE(compute_stats(recovered).bandwidth, 8);
}

TEST(RcmTest, ReducesLaplacianBandwidthFromShuffle) {
  const Csr a = permute_symmetric(laplacian_2d(12, 12),
                                  random_permutation(144, 8));
  const Csr reordered = permute_symmetric(a, rcm_ordering(a));
  EXPECT_LT(compute_stats(reordered).bandwidth,
            compute_stats(a).bandwidth / 2);
}

TEST(RcmTest, HandlesDisconnectedGraph) {
  // Two disjoint chains (block diagonal): both components must appear.
  CooBuilder builder(6, 6);
  for (Index i = 0; i < 3; ++i) {
    builder.add(i, i, 2.0);
    builder.add(i + 3, i + 3, 2.0);
  }
  builder.add_symmetric(0, 1, -1.0);
  builder.add_symmetric(1, 2, -1.0);
  builder.add_symmetric(3, 4, -1.0);
  const Csr a = builder.to_csr();
  const IndexVec perm = rcm_ordering(a);
  std::set<Index> seen(perm.begin(), perm.end());
  EXPECT_EQ(seen.size(), 6u);
}

TEST(RcmTest, IdentityLikeOnDiagonalMatrix) {
  const Csr d = diagonal_spd(8, 1.0, 2.0, 4);
  const IndexVec perm = rcm_ordering(d);
  std::set<Index> seen(perm.begin(), perm.end());
  EXPECT_EQ(seen.size(), 8u);
}

TEST(RcmTest, RejectsNonSquare) {
  Csr rect;
  rect.rows = 2;
  rect.cols = 3;
  rect.row_ptr = {0, 0, 0};
  EXPECT_THROW(rcm_ordering(rect), Error);
}

TEST(RcmTest, ShrinksHaloForPartitionedShuffledBand) {
  BandedSpdConfig config;
  config.n = 256;
  config.half_bandwidth = 4;
  config.diag_excess = 0.1;
  config.seed = 15;
  const Csr shuffled = permute_symmetric(banded_spd(config),
                                         random_permutation(256, 16));
  const Csr recovered = permute_symmetric(shuffled, rcm_ordering(shuffled));
  EXPECT_LT(off_block_coupling(recovered, 16),
            0.3 * off_block_coupling(shuffled, 16));
}

}  // namespace
}  // namespace rsls::sparse
