// SpMV kernel registry: every registered kernel must agree with the
// csr-scalar seed kernel. csr-simd reorders the per-row summation, so
// its golden cross-check uses exactly-representable integer data (every
// summation order is exact there); sell-c-sigma preserves the scalar
// per-row addition chain and must match bitwise on *any* data, signed
// zeros included. The permutation round-trip (sorted lane → original
// row) is exercised by basis-vector probes and row-range calls that
// cross chunk boundaries.

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <string>
#include <vector>

#include "core/error.hpp"
#include "core/rng.hpp"
#include "sparse/csr.hpp"
#include "sparse/spmv_kernel.hpp"

namespace rsls {
namespace {

/// A matrix with a nonsymmetric, irregular pattern: varying row lengths
/// (including empty rows), rectangular shape, pseudo-random columns.
/// `integer_values` draws small integers so any summation order is
/// exact in double precision.
sparse::Csr make_pattern(Index rows, Index cols, std::uint64_t seed,
                         bool integer_values) {
  Rng rng(seed);
  sparse::Csr a;
  a.rows = rows;
  a.cols = cols;
  a.row_ptr.assign(static_cast<std::size_t>(rows) + 1, 0);
  for (Index r = 0; r < rows; ++r) {
    const auto len = static_cast<Index>(rng.uniform(0.0, 9.0));  // 0..8
    std::vector<Index> row_cols;
    for (Index k = 0; k < len; ++k) {
      row_cols.push_back(
          static_cast<Index>(rng.uniform(0.0, static_cast<double>(cols))) %
          cols);
    }
    std::sort(row_cols.begin(), row_cols.end());
    row_cols.erase(std::unique(row_cols.begin(), row_cols.end()),
                   row_cols.end());
    for (const Index c : row_cols) {
      a.col_idx.push_back(c);
      const double v = integer_values
                           ? std::floor(rng.uniform(-8.0, 9.0))
                           : rng.uniform(-1.0, 1.0);
      a.values.push_back(v);
    }
    a.row_ptr[static_cast<std::size_t>(r) + 1] =
        static_cast<Index>(a.col_idx.size());
  }
  sparse::validate(a);
  return a;
}

RealVec make_x(Index n, std::uint64_t seed, bool integer_values) {
  Rng rng(seed);
  RealVec x(static_cast<std::size_t>(n));
  for (Real& v : x) {
    v = integer_values ? std::floor(rng.uniform(-4.0, 5.0))
                       : rng.uniform(-1.0, 1.0);
  }
  if (!x.empty()) {
    x[0] = -0.0;  // signed zero must survive every kernel bit-for-bit
  }
  return x;
}

/// Bitwise equality, distinguishing -0.0 from +0.0 (EXPECT_EQ on
/// doubles would not).
void expect_bitwise_eq(const RealVec& expected, const RealVec& actual,
                       const std::string& label) {
  ASSERT_EQ(expected.size(), actual.size()) << label;
  for (std::size_t i = 0; i < expected.size(); ++i) {
    std::uint64_t eb = 0;
    std::uint64_t ab = 0;
    std::memcpy(&eb, &expected[i], sizeof(eb));
    std::memcpy(&ab, &actual[i], sizeof(ab));
    EXPECT_EQ(eb, ab) << label << " diverges at element " << i << " ("
                      << expected[i] << " vs " << actual[i] << ")";
  }
}

TEST(SpmvKernelRegistryTest, RosterNamesResolve) {
  const auto& names = sparse::spmv_kernel_names();
  ASSERT_EQ(names.size(), 3u);
  EXPECT_EQ(names[0], "csr-scalar");
  EXPECT_EQ(names[1], "csr-simd");
  EXPECT_EQ(names[2], "sell-c-sigma");
  for (const std::string& name : names) {
    const sparse::SpmvKernel* kernel = sparse::spmv_kernel_from_name(name);
    ASSERT_NE(kernel, nullptr) << name;
    EXPECT_EQ(kernel->name(), name);
    EXPECT_EQ(&sparse::spmv_kernel_or_throw(name), kernel);
  }
  EXPECT_EQ(sparse::spmv_kernel_from_name("csc-scalar"), nullptr);
  EXPECT_EQ(&sparse::kernel_or_default(nullptr),
            &sparse::default_spmv_kernel());
  EXPECT_EQ(sparse::default_spmv_kernel().name(), "csr-scalar");
}

TEST(SpmvKernelRegistryTest, UnknownNameThrowsNamingRoster) {
  try {
    sparse::spmv_kernel_or_throw("ellpack");
    FAIL() << "expected rsls::Error";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("ellpack"), std::string::npos);
    EXPECT_NE(what.find("csr-scalar|csr-simd|sell-c-sigma"),
              std::string::npos);
  }
}

// Golden cross-check on a nonsymmetric pattern with integer data: every
// kernel must reproduce csr-scalar exactly for spmv, spmv_add, the
// row-range variants, and spmv_transpose. Integer data makes every
// summation order exact, so csr-simd's blocked reduction has no excuse.
TEST(SpmvKernelGoldenTest, AllKernelsMatchScalarExactlyOnIntegerData) {
  const sparse::Csr a =
      make_pattern(/*rows=*/83, /*cols=*/61, /*seed=*/42,
                   /*integer_values=*/true);
  const RealVec x = make_x(a.cols, 7, /*integer_values=*/true);
  const RealVec xt = make_x(a.rows, 11, /*integer_values=*/true);
  const auto n = static_cast<std::size_t>(a.rows);

  const auto scalar = sparse::default_spmv_kernel().prepare(a);
  RealVec y_ref(n, 0.0);
  scalar->spmv(x, y_ref);
  RealVec yadd_ref(n, 1.0);
  scalar->spmv_add(3.0, x, yadd_ref);
  RealVec yt_ref(static_cast<std::size_t>(a.cols), 0.0);
  scalar->spmv_transpose(xt, yt_ref);
  const Index range_begin = 5;
  const Index range_end = 71;
  RealVec yr_ref(n, -99.0);
  scalar->spmv_rows(range_begin, range_end, x, yr_ref);
  RealVec yra_ref(n, 2.0);
  scalar->spmv_add_rows(range_begin, range_end, -2.0, x, yra_ref);

  for (const std::string& name : sparse::spmv_kernel_names()) {
    SCOPED_TRACE(name);
    const auto plan = sparse::spmv_kernel_or_throw(name).prepare(a);
    EXPECT_EQ(plan->kernel_name(), name);
    RealVec y(n, 0.0);
    plan->spmv(x, y);
    expect_bitwise_eq(y_ref, y, name + " spmv");
    RealVec yadd(n, 1.0);
    plan->spmv_add(3.0, x, yadd);
    expect_bitwise_eq(yadd_ref, yadd, name + " spmv_add");
    RealVec yt(static_cast<std::size_t>(a.cols), 0.0);
    plan->spmv_transpose(xt, yt);
    expect_bitwise_eq(yt_ref, yt, name + " spmv_transpose");
    RealVec yr(n, -99.0);
    plan->spmv_rows(range_begin, range_end, x, yr);
    expect_bitwise_eq(yr_ref, yr, name + " spmv_rows");
    RealVec yra(n, 2.0);
    plan->spmv_add_rows(range_begin, range_end, -2.0, x, yra);
    expect_bitwise_eq(yra_ref, yra, name + " spmv_add_rows");
  }
}

// sell-c-sigma keeps the scalar per-row addition chain (masked lanes
// walk only real entries in CSR order), so unlike csr-simd it must be
// bitwise identical on arbitrary real data — multiple σ windows and
// chunks, irregular row lengths, signed zeros.
TEST(SpmvKernelGoldenTest, SellCSigmaBitwiseOnGeneralRealData) {
  const sparse::Csr a =
      make_pattern(/*rows=*/211, /*cols=*/211, /*seed=*/5,
                   /*integer_values=*/false);
  const RealVec x = make_x(a.cols, 13, /*integer_values=*/false);
  const auto n = static_cast<std::size_t>(a.rows);

  const auto scalar = sparse::default_spmv_kernel().prepare(a);
  const auto sell = sparse::spmv_kernel_or_throw("sell-c-sigma").prepare(a);

  RealVec y_ref(n, 0.0);
  scalar->spmv(x, y_ref);
  RealVec y(n, 0.0);
  sell->spmv(x, y);
  expect_bitwise_eq(y_ref, y, "sell-c-sigma spmv");

  RealVec yadd_ref(n, 0.5);
  scalar->spmv_add(1.25, x, yadd_ref);
  RealVec yadd(n, 0.5);
  sell->spmv_add(1.25, x, yadd);
  expect_bitwise_eq(yadd_ref, yadd, "sell-c-sigma spmv_add");
}

// Permutation round-trip: the SELL-C-σ build sorts rows within σ
// windows, computes per-lane sums, and must scatter each lane back to
// its *original* row. Basis-vector products make a misrouted scatter
// visible as a wrong row, and row ranges that cross chunk boundaries
// verify the per-chunk original-row span bookkeeping.
TEST(SpmvKernelGoldenTest, SellCSigmaPermutationRoundTrip) {
  const sparse::Csr a =
      make_pattern(/*rows=*/97, /*cols=*/97, /*seed=*/29,
                   /*integer_values=*/true);
  const auto n = static_cast<std::size_t>(a.rows);
  const auto scalar = sparse::default_spmv_kernel().prepare(a);
  const auto sell = sparse::spmv_kernel_or_throw("sell-c-sigma").prepare(a);

  for (Index j = 0; j < a.cols; ++j) {
    RealVec e(static_cast<std::size_t>(a.cols), 0.0);
    e[static_cast<std::size_t>(j)] = 1.0;
    RealVec y_ref(n, 0.0);
    scalar->spmv(e, y_ref);
    RealVec y(n, 0.0);
    sell->spmv(e, y);
    expect_bitwise_eq(y_ref, y, "basis column " + std::to_string(j));
  }

  // Row ranges that start/end mid-chunk (C = 8) and mid-window (σ = 64).
  const RealVec x = make_x(a.cols, 17, /*integer_values=*/true);
  for (const auto& [begin, end] :
       std::vector<std::pair<Index, Index>>{
           {0, 97}, {3, 13}, {8, 64}, {60, 70}, {64, 97}, {90, 97},
           {11, 11}}) {
    SCOPED_TRACE("rows [" + std::to_string(begin) + ", " +
                 std::to_string(end) + ")");
    RealVec y_ref(n, -7.0);
    scalar->spmv_rows(begin, end, x, y_ref);
    RealVec y(n, -7.0);
    sell->spmv_rows(begin, end, x, y);
    expect_bitwise_eq(y_ref, y, "row range");
    // Rows outside the range keep the sentinel.
    for (Index r = 0; r < a.rows; ++r) {
      if (r < begin || r >= end) {
        EXPECT_EQ(y[static_cast<std::size_t>(r)], -7.0) << r;
      }
    }
  }
}

// The row-range seam the rank executor drives: every kernel must leave
// rows outside [begin, end) untouched.
TEST(SpmvKernelGoldenTest, RowRangeWritesOnlyRequestedRows) {
  const sparse::Csr a =
      make_pattern(/*rows=*/30, /*cols=*/30, /*seed=*/3,
                   /*integer_values=*/true);
  const RealVec x = make_x(a.cols, 23, /*integer_values=*/true);
  for (const std::string& name : sparse::spmv_kernel_names()) {
    SCOPED_TRACE(name);
    const auto plan = sparse::spmv_kernel_or_throw(name).prepare(a);
    RealVec y(static_cast<std::size_t>(a.rows), 41.0);
    plan->spmv_rows(10, 20, x, y);
    for (Index r = 0; r < 10; ++r) {
      EXPECT_EQ(y[static_cast<std::size_t>(r)], 41.0);
    }
    for (Index r = 20; r < 30; ++r) {
      EXPECT_EQ(y[static_cast<std::size_t>(r)], 41.0);
    }
  }
}

}  // namespace
}  // namespace rsls
