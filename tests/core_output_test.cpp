// Unit tests: table printer, CSV writer, environment helpers.

#include <gtest/gtest.h>

#include <cstdlib>
#include <sstream>

#include "core/csv.hpp"
#include "core/env.hpp"
#include "core/error.hpp"
#include "core/table.hpp"

namespace rsls {
namespace {

TEST(TablePrinterTest, AlignsColumns) {
  TablePrinter table({"a", "bbbb"});
  table.add_row({"xxxxx", "y"});
  std::ostringstream os;
  table.print(os);
  const std::string out = os.str();
  // Header, underline, one row.
  EXPECT_NE(out.find("a      bbbb"), std::string::npos);
  EXPECT_NE(out.find("xxxxx  y"), std::string::npos);
  EXPECT_NE(out.find("-----"), std::string::npos);
}

TEST(TablePrinterTest, RejectsWrongWidth) {
  TablePrinter table({"a", "b"});
  EXPECT_THROW(table.add_row({"only-one"}), Error);
}

TEST(TablePrinterTest, RejectsEmptyHeader) {
  EXPECT_THROW(TablePrinter({}), Error);
}

TEST(TablePrinterTest, NumFormatsPrecision) {
  EXPECT_EQ(TablePrinter::num(1.23456, 2), "1.23");
  EXPECT_EQ(TablePrinter::num(1.0, 0), "1");
  EXPECT_EQ(TablePrinter::num(-0.5, 1), "-0.5");
}

TEST(TablePrinterTest, RowCount) {
  TablePrinter table({"a"});
  EXPECT_EQ(table.row_count(), 0u);
  table.add_row({"1"});
  table.add_row({"2"});
  EXPECT_EQ(table.row_count(), 2u);
}

TEST(CsvWriterTest, WritesHeaderAndRows) {
  std::ostringstream os;
  CsvWriter csv(os, {"x", "y"});
  csv.add_row({"1", "2"});
  EXPECT_EQ(os.str(), "x,y\n1,2\n");
}

TEST(CsvWriterTest, EscapesSpecialCharacters) {
  EXPECT_EQ(CsvWriter::escape("plain"), "plain");
  EXPECT_EQ(CsvWriter::escape("a,b"), "\"a,b\"");
  EXPECT_EQ(CsvWriter::escape("say \"hi\""), "\"say \"\"hi\"\"\"");
  EXPECT_EQ(CsvWriter::escape("line\nbreak"), "\"line\nbreak\"");
}

TEST(CsvWriterTest, RejectsWrongWidth) {
  std::ostringstream os;
  CsvWriter csv(os, {"a", "b"});
  EXPECT_THROW(csv.add_row({"1"}), Error);
}

TEST(EnvTest, MissingVariableIsNullopt) {
  EXPECT_FALSE(env_string("RSLS_DEFINITELY_NOT_SET_12345").has_value());
}

TEST(EnvTest, SetVariableIsReturned) {
  ::setenv("RSLS_TEST_VAR", "hello", 1);
  const auto value = env_string("RSLS_TEST_VAR");
  ASSERT_TRUE(value.has_value());
  EXPECT_EQ(*value, "hello");
  ::unsetenv("RSLS_TEST_VAR");
}

TEST(EnvTest, QuickModeFollowsEnv) {
  ::unsetenv("RSLS_QUICK");
  EXPECT_FALSE(quick_mode());
  ::setenv("RSLS_QUICK", "1", 1);
  EXPECT_TRUE(quick_mode());
  ::setenv("RSLS_QUICK", "0", 1);
  EXPECT_FALSE(quick_mode());
  ::unsetenv("RSLS_QUICK");
}

TEST(EnvTest, QuickScaledPicksVariant) {
  ::unsetenv("RSLS_QUICK");
  EXPECT_EQ(quick_scaled(100, 10), 100);
  ::setenv("RSLS_QUICK", "1", 1);
  EXPECT_EQ(quick_scaled(100, 10), 10);
  EXPECT_EQ(quick_scaled(100, 0, 5), 5);  // floor applies
  ::unsetenv("RSLS_QUICK");
}

}  // namespace
}  // namespace rsls
