// Unit tests: the measured-t_lost parameterization of the CR cost model
// (Table 6's measurement-driven branch) against the I_C/2 approximation.

#include <gtest/gtest.h>

#include <cmath>

#include "model/cost_models.hpp"

namespace rsls::model {
namespace {

BaseCase base_case() {
  BaseCase base;
  base.t_base = 100.0;
  base.n_cores = 32;
  base.p1 = 8.0;
  return base;
}

TEST(MeasuredTlostTest, ClosedForm) {
  // t_C = 1, I_C = 20, λ = 0.01, measured t_lost = 5:
  // T_N = 100·(1 + 0.05) / (1 − 0.05).
  CrModelParams params;
  params.t_c = 1.0;
  params.interval = 20.0;
  params.lambda = 0.01;
  params.t_lost = 5.0;
  const auto costs = checkpoint_restart(base_case(), params);
  EXPECT_NEAR(costs.total_time, 105.0 / 0.95, 1e-9);
}

TEST(MeasuredTlostTest, ZeroMeasuredLostLeavesOnlyCheckpointCost) {
  CrModelParams params;
  params.t_c = 1.0;
  params.interval = 20.0;
  params.lambda = 0.01;
  params.t_lost = 0.0;
  const auto costs = checkpoint_restart(base_case(), params);
  EXPECT_NEAR(costs.total_time, 100.0 / 0.95, 1e-9);
}

TEST(MeasuredTlostTest, NegativeSelectsApproximation) {
  CrModelParams measured;
  measured.t_c = 1.0;
  measured.interval = 20.0;
  measured.lambda = 0.01;
  measured.t_lost = 10.0;  // == I_C/2, the approximation's value
  CrModelParams approx = measured;
  approx.t_lost = -1.0;
  const auto a = checkpoint_restart(base_case(), measured);
  const auto b = checkpoint_restart(base_case(), approx);
  // Same unit value but different feedback structure: the approximation
  // multiplies T_N (faults strike recomputation too), so it costs more.
  EXPECT_GT(b.total_time, a.total_time);
  // Both exceed the no-fault case.
  EXPECT_GT(a.total_time, 100.0 / 0.95);
}

TEST(MeasuredTlostTest, MonotoneInMeasuredValue) {
  CrModelParams params;
  params.t_c = 0.5;
  params.interval = 10.0;
  params.lambda = 0.02;
  params.t_lost = 1.0;
  const auto lo = checkpoint_restart(base_case(), params);
  params.t_lost = 4.0;
  const auto hi = checkpoint_restart(base_case(), params);
  EXPECT_GT(hi.t_res_ratio, lo.t_res_ratio);
  EXPECT_GT(hi.e_res_ratio, lo.e_res_ratio);
}

TEST(MeasuredTlostTest, StillHaltsOnCheckpointSaturation) {
  CrModelParams params;
  params.t_c = 10.0;
  params.interval = 10.0;
  params.lambda = 0.0;
  params.t_lost = 0.0;
  EXPECT_TRUE(checkpoint_restart(base_case(), params).halted);
}

TEST(MeasuredTlostTest, EnergyAccountsLostTimeAtFullPower) {
  CrModelParams params;
  params.t_c = 1.0;
  params.interval = 20.0;
  params.lambda = 0.01;
  params.t_lost = 5.0;
  params.checkpoint_power_factor = 0.5;
  const auto costs = checkpoint_restart(base_case(), params);
  const double p_normal = 32.0 * 8.0;
  const double t_lost_total = 0.05 * 100.0;
  const double t_chkpt = (1.0 / 20.0) * costs.total_time;
  EXPECT_NEAR(costs.total_energy,
              p_normal * (100.0 + t_lost_total) + 0.5 * p_normal * t_chkpt,
              1e-6);
}

}  // namespace
}  // namespace rsls::model
