// Unit tests: Householder QR and least squares.

#include <gtest/gtest.h>

#include <cmath>

#include "core/error.hpp"
#include "core/rng.hpp"
#include "la/factor.hpp"
#include "la/qr.hpp"
#include "sparse/dense.hpp"
#include "sparse/vector_ops.hpp"

namespace rsls::la {
namespace {

sparse::Dense random_tall(Index m, Index n, std::uint64_t seed) {
  Rng rng(seed);
  sparse::Dense a(m, n);
  for (Index i = 0; i < m; ++i) {
    for (Index j = 0; j < n; ++j) {
      a(i, j) = rng.uniform(-1.0, 1.0);
    }
  }
  for (Index j = 0; j < n; ++j) {
    a(j, j) += 3.0;  // full column rank
  }
  return a;
}

TEST(QrTest, SquareSystemExactSolve) {
  const sparse::Dense a = random_tall(8, 8, 1);
  RealVec x_true(8);
  for (std::size_t i = 0; i < 8; ++i) {
    x_true[i] = static_cast<double>(i) - 3.5;
  }
  RealVec b(8);
  a.multiply(x_true, b);
  const Qr qr(a);
  const RealVec x = qr.solve_least_squares(b);
  for (std::size_t i = 0; i < 8; ++i) {
    EXPECT_NEAR(x[i], x_true[i], 1e-10);
  }
}

TEST(QrTest, ConsistentTallSystemRecovered) {
  const sparse::Dense a = random_tall(30, 6, 2);
  RealVec x_true = {1.0, -2.0, 3.0, -4.0, 5.0, -6.0};
  RealVec b(30);
  a.multiply(x_true, b);
  const RealVec x = Qr(a).solve_least_squares(b);
  for (std::size_t i = 0; i < 6; ++i) {
    EXPECT_NEAR(x[i], x_true[i], 1e-10);
  }
}

TEST(QrTest, LeastSquaresResidualOrthogonalToRange) {
  const sparse::Dense a = random_tall(20, 5, 3);
  Rng rng(4);
  RealVec b(20);
  for (Real& v : b) {
    v = rng.uniform(-2.0, 2.0);
  }
  const RealVec x = Qr(a).solve_least_squares(b);
  RealVec ax(20);
  a.multiply(x, ax);
  RealVec r(20);
  for (std::size_t i = 0; i < 20; ++i) {
    r[i] = b[i] - ax[i];
  }
  // Aᵀ r = 0 at the least-squares optimum.
  RealVec atr(5);
  a.multiply_transpose(r, atr);
  EXPECT_LT(sparse::norm2(atr), 1e-10);
}

TEST(QrTest, MatchesNormalEquations) {
  const sparse::Dense a = random_tall(15, 4, 5);
  RealVec b(15, 1.0);
  const RealVec x_qr = Qr(a).solve_least_squares(b);
  // Normal equations via Cholesky of AᵀA.
  sparse::Dense ata(4, 4);
  for (Index i = 0; i < 4; ++i) {
    for (Index j = 0; j < 4; ++j) {
      Real sum = 0.0;
      for (Index k = 0; k < 15; ++k) {
        sum += a(k, i) * a(k, j);
      }
      ata(i, j) = sum;
    }
  }
  RealVec atb(4);
  a.multiply_transpose(b, atb);
  Cholesky(ata).solve(atb);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_NEAR(x_qr[i], atb[i], 1e-9);
  }
}

TEST(QrTest, QTransposePreservesNorm) {
  const sparse::Dense a = random_tall(12, 5, 6);
  const Qr qr(a);
  Rng rng(7);
  RealVec v(12);
  for (Real& value : v) {
    value = rng.uniform(-1.0, 1.0);
  }
  const Real norm_before = sparse::norm2(v);
  qr.apply_q_transpose(v);
  EXPECT_NEAR(sparse::norm2(v), norm_before, 1e-10);
}

TEST(QrTest, RejectsWideMatrix) {
  const sparse::Dense a(3, 5);
  EXPECT_THROW(Qr{a}, Error);
}

TEST(QrTest, RejectsRankDeficientZeroColumn) {
  sparse::Dense a(4, 2);
  a(0, 0) = 1.0;
  a(1, 0) = 2.0;  // column 1 entirely zero
  EXPECT_THROW(Qr{a}, Error);
}

TEST(QrTest, DimensionsExposed) {
  const Qr qr(random_tall(9, 4, 8));
  EXPECT_EQ(qr.rows(), 9);
  EXPECT_EQ(qr.cols(), 4);
}

}  // namespace
}  // namespace rsls::la
