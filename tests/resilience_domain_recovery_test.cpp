// Integration tests: machine-level recovery (spare substitution and
// shrinking) under a fallible recovery path — every scheme must survive
// a nested fault that strikes its repair mid-flight, bit-for-bit
// deterministically across the parallel Runner; and an exhausted
// escalation ladder must end in a structured declared failure, not a
// poisoned iterate.

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "harness/runner.hpp"
#include "harness/scheme_factory.hpp"
#include "power/rapl.hpp"
#include "resilience/fault.hpp"
#include "resilience/recovery_runtime.hpp"
#include "sparse/generators.hpp"

namespace rsls {
namespace {

using resilience::FaultRecord;
using resilience::RecoveryPolicy;
using resilience::SolveStatus;

harness::Workload make_workload() {
  const sparse::Csr a = sparse::banded_spd({192, 4, 1.0, 0.02, 1.0, 77});
  return harness::Workload::create(a, 8);
}

/// A replayed two-record schedule: a two-rank loss, then a second strike
/// at the same ranks one nanosecond later — the recovery for the first
/// event advances the virtual clock well past it, so the second lands
/// *inside* the repair and voids the attempt.
std::vector<FaultRecord> struck_schedule(Seconds ff_time) {
  FaultRecord first;
  first.time = 0.3 * ff_time;
  first.iteration = 1;
  first.ranks = {2, 3};
  FaultRecord strike = first;
  strike.time = first.time + 1e-9;
  return {first, strike};
}

/// Grid: both machine-level policies × the full scheme roster, each cell
/// replaying the nested-strike schedule under a 2-retry budget.
std::vector<harness::GroupResult> run_grid() {
  harness::GroupSpec group;
  group.label = "nested-strike";
  group.make_workload = make_workload;
  group.config.processes = 8;
  group.config.faults = 0;  // the replayed schedule is the only source

  for (const auto policy : {RecoveryPolicy::kSpare, RecoveryPolicy::kShrink}) {
    for (const auto& scheme : harness::all_scheme_names()) {
      harness::CellSpec cell;
      cell.scheme = scheme;
      harness::ExperimentConfig config = group.config;
      config.recovery.policy = policy;
      config.recovery.spare_ranks =
          policy == RecoveryPolicy::kSpare ? 4 : 0;
      config.recovery.max_retries = 2;
      cell.config = config;
      cell.body = [scheme](const harness::Workload& workload,
                           const harness::FfBaseline& ff,
                           const harness::ExperimentConfig& cell_config) {
        auto injector = resilience::FaultInjector::from_schedule(
            struck_schedule(ff.time), cell_config.processes);
        harness::RunHooks hooks;
        hooks.injector = &injector;
        return harness::run_scheme(workload, scheme, cell_config, ff, hooks);
      };
      group.cells.push_back(std::move(cell));
    }
  }

  harness::Runner runner(4);
  return runner.run({group});
}

TEST(DomainRecoveryTest, EverySchemeSurvivesAStruckRecovery) {
  const auto results = run_grid();
  ASSERT_EQ(results.size(), 1u);
  const auto& runs = results[0].runs;
  ASSERT_EQ(runs.size(), 2 * harness::all_scheme_names().size());
  for (const auto& run : runs) {
    const auto& r = run.report;
    SCOPED_TRACE(run.scheme);
    EXPECT_TRUE(r.cg.converged);
    EXPECT_EQ(r.status, SolveStatus::kConverged);
    // The second record struck the repair of the first: the attempt was
    // voided, retried after a backoff, and eventually succeeded.
    EXPECT_GE(r.recoveries_struck, 1);
    EXPECT_GE(r.recovery_retries, 1);
    EXPECT_GE(r.recovery_attempts, 2);
    EXPECT_GE(r.nested_faults, 1);
    EXPECT_EQ(r.faults, 4);  // two events × two ranks
    // The realized schedule is surfaced for replay.
    ASSERT_EQ(r.fault_schedule.size(), 2u);
    EXPECT_EQ(r.fault_schedule[0].ranks, (IndexVec{2, 3}));
    // Recovery work is priced under its own phase.
    EXPECT_GT(r.account.core_energy(power::PhaseTag::kRecover), 0.0);
  }
  // Policy split: the spare half promotes (pool of 4 covers both
  // events), the shrink half redistributes.
  const std::size_t half = harness::all_scheme_names().size();
  for (std::size_t i = 0; i < runs.size(); ++i) {
    const auto& r = runs[i].report;
    SCOPED_TRACE(runs[i].scheme);
    if (i < half) {
      EXPECT_EQ(r.spares_consumed, 4);
      EXPECT_EQ(r.spare_pool_dry, 0);
      EXPECT_EQ(r.shrink_events, 0);
    } else {
      EXPECT_EQ(r.spares_consumed, 0);
      EXPECT_EQ(r.shrink_events, 4);
    }
  }
}

TEST(DomainRecoveryTest, GridIsBitwiseDeterministicUnderTheRunner) {
  const auto first = run_grid();
  const auto second = run_grid();
  ASSERT_EQ(first.size(), second.size());
  for (std::size_t g = 0; g < first.size(); ++g) {
    ASSERT_EQ(first[g].runs.size(), second[g].runs.size());
    for (std::size_t i = 0; i < first[g].runs.size(); ++i) {
      const auto& a = first[g].runs[i].report;
      const auto& b = second[g].runs[i].report;
      SCOPED_TRACE(first[g].runs[i].scheme);
      EXPECT_EQ(a.cg.iterations, b.cg.iterations);
      EXPECT_EQ(a.cg.relative_residual, b.cg.relative_residual);  // bitwise
      EXPECT_EQ(a.time, b.time);
      EXPECT_EQ(a.energy, b.energy);
      EXPECT_EQ(a.recovery_attempts, b.recovery_attempts);
      EXPECT_EQ(a.recoveries_struck, b.recoveries_struck);
    }
  }
}

TEST(DomainRecoveryTest, ExhaustedLadderDeclaresFailure) {
  const auto workload = make_workload();
  harness::ExperimentConfig config;
  config.processes = 8;
  config.faults = 1;
  // Every attempt is voided by an impossible timeout and the ladder has
  // no rounds: the run must give up with a structured outcome.
  config.recovery.max_retries = 1;
  config.recovery.attempt_timeout = 1e-12;
  config.recovery.max_escalations = 0;
  const auto ff = harness::run_fault_free(workload, config);
  const auto run = harness::run_scheme(workload, "LI", config, ff);
  const auto& r = run.report;
  EXPECT_EQ(r.status, SolveStatus::kDeclaredFailure);
  EXPECT_FALSE(r.cg.converged);
  EXPECT_GE(r.recovery_timeouts, 2);
  EXPECT_GE(r.escalations, 1);
  // The returned state is the initial guess (x₀ = 0 → residual = ‖b‖),
  // not a NaN-poisoned iterate.
  EXPECT_TRUE(std::isfinite(r.true_relative_residual));
  EXPECT_NEAR(r.true_relative_residual, 1.0, 1e-9);
}

TEST(DomainRecoveryTest, DomainFaultsDefeatNarrowParityButNotWideParity) {
  // A synthetic 4-rank domain loss exceeds ESR's default parity (m = 2)
  // and forces its zero-fill fallback; parity m = 4 decodes it exactly
  // and stays on the fault-free trajectory.
  const auto workload = make_workload();
  harness::ExperimentConfig config;
  config.processes = 8;
  config.faults = 1;
  config.fault_domains = 4;
  const auto ff = harness::run_fault_free(workload, config);

  harness::ExperimentConfig wide = config;
  wide.scheme.abft_parity_blocks = 4;
  const auto wide_run = harness::run_scheme(workload, "ESR", wide, ff);
  EXPECT_TRUE(wide_run.report.cg.converged);
  // The m = 4 Vandermonde decode of four simultaneous losses is exact
  // only to rounding, so allow a couple of iterations of drift — the
  // defeated narrow code below pays a restart, which costs far more.
  EXPECT_LE(wide_run.report.cg.iterations, ff.iterations + 2);
  EXPECT_EQ(wide_run.report.escalations, 0);
  EXPECT_EQ(wide_run.report.domain_faults, 1);
  EXPECT_EQ(wide_run.report.faults, 4);

  harness::ExperimentConfig narrow = config;
  narrow.scheme.abft_parity_blocks = 1;
  const auto narrow_run = harness::run_scheme(workload, "ESR", narrow, ff);
  EXPECT_TRUE(narrow_run.report.cg.converged);
  EXPECT_GT(narrow_run.report.cg.iterations,
            wide_run.report.cg.iterations + 2);
}

}  // namespace
}  // namespace rsls
