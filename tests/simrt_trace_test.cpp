// Unit tests: binned power trace.

#include <gtest/gtest.h>

#include "core/error.hpp"
#include "simrt/cluster.hpp"
#include "simrt/trace.hpp"

namespace rsls::simrt {
namespace {

using power::Activity;
using power::PhaseTag;

TEST(PowerTraceTest, SingleIntervalFillsBins) {
  PowerTrace trace(1, 1.0);
  trace.add(0, 0.0, 2.0, 20.0);  // 10 W over 2 s
  const auto samples = trace.render(0, 2.0, 0.0);
  ASSERT_EQ(samples.size(), 2u);
  EXPECT_DOUBLE_EQ(samples[0].power, 10.0);
  EXPECT_DOUBLE_EQ(samples[1].power, 10.0);
}

TEST(PowerTraceTest, PartialBinOverlap) {
  PowerTrace trace(1, 1.0);
  trace.add(0, 0.5, 1.0, 10.0);  // 10 W from 0.5 to 1.5
  const auto samples = trace.render(0, 2.0, 0.0);
  ASSERT_EQ(samples.size(), 2u);
  EXPECT_DOUBLE_EQ(samples[0].power, 5.0);
  EXPECT_DOUBLE_EQ(samples[1].power, 5.0);
}

TEST(PowerTraceTest, ConstantPowerAdded) {
  PowerTrace trace(1, 1.0);
  const auto samples = trace.render(0, 3.0, 42.0);
  ASSERT_EQ(samples.size(), 3u);
  for (const auto& s : samples) {
    EXPECT_DOUBLE_EQ(s.power, 42.0);
  }
}

TEST(PowerTraceTest, NodesAreIndependent) {
  PowerTrace trace(2, 1.0);
  trace.add(0, 0.0, 1.0, 7.0);
  EXPECT_DOUBLE_EQ(trace.render(0, 1.0, 0.0)[0].power, 7.0);
  EXPECT_DOUBLE_EQ(trace.render(1, 1.0, 0.0)[0].power, 0.0);
}

TEST(PowerTraceTest, EnergyConserved) {
  PowerTrace trace(1, 0.25);
  trace.add(0, 0.1, 1.3, 26.0);
  const auto samples = trace.render(0, 2.0, 0.0);
  Joules total = 0.0;
  for (const auto& s : samples) {
    total += s.power * 0.25;
  }
  EXPECT_NEAR(total, 26.0, 1e-9);
}

TEST(PowerTraceTest, RejectsBadArguments) {
  EXPECT_THROW(PowerTrace(0, 1.0), Error);
  EXPECT_THROW(PowerTrace(1, 0.0), Error);
  PowerTrace trace(1, 1.0);
  EXPECT_THROW(trace.add(1, 0.0, 1.0, 1.0), Error);
  EXPECT_THROW(trace.add(0, -1.0, 1.0, 1.0), Error);
  EXPECT_THROW(trace.render(2, 1.0, 0.0), Error);
}

TEST(ClusterTraceTest, ProfileReflectsActivity) {
  MachineConfig config = paper_node();
  VirtualCluster cluster(config, 24);
  cluster.enable_power_trace(0.01);
  // Active phase then a much quieter disk phase.
  cluster.advance_all(0.1, Activity::kActive, PhaseTag::kSolve);
  cluster.write_disk(1e6, PhaseTag::kCheckpoint);
  const auto profile = cluster.node_power_profile(0);
  ASSERT_GT(profile.size(), 2u);
  const Watts active_power = profile.front().power;
  const Watts disk_power = profile.back().power;
  EXPECT_GT(active_power, disk_power);
}

TEST(ClusterTraceTest, ProfileRequiresEnabledTrace) {
  VirtualCluster cluster(paper_node(), 4);
  EXPECT_THROW(cluster.node_power_profile(0), Error);
  EXPECT_FALSE(cluster.power_trace_enabled());
  cluster.enable_power_trace(0.01);
  EXPECT_TRUE(cluster.power_trace_enabled());
}

}  // namespace
}  // namespace rsls::simrt
