// Unit tests: column compression (the local-support renumbering the LSI
// construction works in).

#include <gtest/gtest.h>

#include "sparse/coo.hpp"
#include "sparse/csr.hpp"
#include "sparse/generators.hpp"
#include "sparse/vector_ops.hpp"

namespace rsls::sparse {
namespace {

TEST(CompressColumnsTest, KeepsOnlySupport) {
  CooBuilder b(2, 10);
  b.add(0, 3, 1.0);
  b.add(0, 7, 2.0);
  b.add(1, 3, 3.0);
  const auto compressed = compress_columns(b.to_csr());
  EXPECT_EQ(compressed.matrix.cols, 2);
  ASSERT_EQ(compressed.support.size(), 2u);
  EXPECT_EQ(compressed.support[0], 3);
  EXPECT_EQ(compressed.support[1], 7);
  EXPECT_DOUBLE_EQ(compressed.matrix.at(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(compressed.matrix.at(0, 1), 2.0);
  EXPECT_DOUBLE_EQ(compressed.matrix.at(1, 0), 3.0);
}

TEST(CompressColumnsTest, ResultIsValidCsr) {
  const Csr a = extract_rows(laplacian_2d(8, 8), 16, 24);
  const auto compressed = compress_columns(a);
  validate(compressed.matrix);
  EXPECT_EQ(compressed.matrix.nnz(), a.nnz());
}

TEST(CompressColumnsTest, SpmvEquivalentOnSupport) {
  // A·x == compressed·x|support for any x.
  const Csr a = extract_rows(laplacian_2d(10, 10), 30, 40);
  const auto compressed = compress_columns(a);
  RealVec x(static_cast<std::size_t>(a.cols));
  for (std::size_t i = 0; i < x.size(); ++i) {
    x[i] = static_cast<double>(i) * 0.01 - 0.3;
  }
  RealVec x_local(compressed.support.size());
  for (std::size_t j = 0; j < compressed.support.size(); ++j) {
    x_local[j] = x[static_cast<std::size_t>(compressed.support[j])];
  }
  RealVec y_full(static_cast<std::size_t>(a.rows));
  RealVec y_local(static_cast<std::size_t>(a.rows));
  spmv(a, x, y_full);
  spmv(compressed.matrix, x_local, y_local);
  for (std::size_t i = 0; i < y_full.size(); ++i) {
    EXPECT_DOUBLE_EQ(y_full[i], y_local[i]);
  }
}

TEST(CompressColumnsTest, FullSupportIsIdentityRenumbering) {
  const Csr a = laplacian_1d(6);
  const auto compressed = compress_columns(a);
  EXPECT_EQ(compressed.matrix.cols, 6);
  EXPECT_EQ(compressed.matrix.col_idx, a.col_idx);
}

TEST(CompressColumnsTest, EmptyMatrix) {
  Csr a;
  a.rows = 2;
  a.cols = 5;
  a.row_ptr = {0, 0, 0};
  const auto compressed = compress_columns(a);
  EXPECT_EQ(compressed.matrix.cols, 0);
  EXPECT_TRUE(compressed.support.empty());
}

TEST(CompressColumnsTest, SupportIsAscending) {
  sparse::IrregularSpdConfig config;
  config.n = 64;
  config.extra_per_row = 4;
  config.diag_excess = 0.1;
  config.seed = 9;
  const Csr rows = extract_rows(irregular_spd(config), 10, 20);
  const auto compressed = compress_columns(rows);
  for (std::size_t j = 1; j < compressed.support.size(); ++j) {
    EXPECT_LT(compressed.support[j - 1], compressed.support[j]);
  }
}

TEST(CompressColumnsTest, BandedSupportIsBlockPlusHalo) {
  // A thin-band row block references its rows' columns ± bandwidth only.
  const Csr a = laplacian_1d(100);
  const Csr rows = extract_rows(a, 40, 60);
  const auto compressed = compress_columns(rows);
  EXPECT_EQ(compressed.support.front(), 39);
  EXPECT_EQ(compressed.support.back(), 60);
  EXPECT_EQ(compressed.matrix.cols, 22);
}

}  // namespace
}  // namespace rsls::sparse
