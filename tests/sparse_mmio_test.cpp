// Unit tests: Matrix Market I/O.

#include <gtest/gtest.h>

#include <sstream>

#include "core/error.hpp"
#include "sparse/coo.hpp"
#include "sparse/generators.hpp"
#include "sparse/mmio.hpp"

namespace rsls::sparse {
namespace {

TEST(MmioTest, RoundTripGeneral) {
  const Csr original = laplacian_2d(5, 4);
  std::stringstream stream;
  write_matrix_market(stream, original);
  const Csr loaded = read_matrix_market(stream);
  EXPECT_EQ(loaded.rows, original.rows);
  EXPECT_EQ(loaded.cols, original.cols);
  EXPECT_EQ(loaded.row_ptr, original.row_ptr);
  EXPECT_EQ(loaded.col_idx, original.col_idx);
  EXPECT_EQ(loaded.values, original.values);
}

TEST(MmioTest, SymmetricExpansion) {
  std::stringstream stream(
      "%%MatrixMarket matrix coordinate real symmetric\n"
      "% lower triangle only\n"
      "3 3 4\n"
      "1 1 2.0\n"
      "2 1 -1.0\n"
      "2 2 2.0\n"
      "3 3 2.0\n");
  const Csr a = read_matrix_market(stream);
  EXPECT_EQ(a.rows, 3);
  EXPECT_EQ(a.nnz(), 5);  // off-diagonal mirrored
  EXPECT_DOUBLE_EQ(a.at(0, 1), -1.0);
  EXPECT_DOUBLE_EQ(a.at(1, 0), -1.0);
  EXPECT_TRUE(is_symmetric(a));
}

TEST(MmioTest, SkipsComments) {
  std::stringstream stream(
      "%%MatrixMarket matrix coordinate real general\n"
      "% a comment\n"
      "% another comment\n"
      "2 2 1\n"
      "1 2 3.5\n");
  const Csr a = read_matrix_market(stream);
  EXPECT_DOUBLE_EQ(a.at(0, 1), 3.5);
}

TEST(MmioTest, IntegerFieldAccepted) {
  std::stringstream stream(
      "%%MatrixMarket matrix coordinate integer general\n"
      "1 1 1\n"
      "1 1 7\n");
  const Csr a = read_matrix_market(stream);
  EXPECT_DOUBLE_EQ(a.at(0, 0), 7.0);
}

TEST(MmioTest, RejectsMissingBanner) {
  std::stringstream stream("1 1 1\n1 1 2.0\n");
  EXPECT_THROW(read_matrix_market(stream), Error);
}

TEST(MmioTest, RejectsUnsupportedFormat) {
  std::stringstream stream("%%MatrixMarket matrix array real general\n");
  EXPECT_THROW(read_matrix_market(stream), Error);
}

TEST(MmioTest, RejectsUnsupportedField) {
  std::stringstream stream(
      "%%MatrixMarket matrix coordinate complex general\n1 1 1\n");
  EXPECT_THROW(read_matrix_market(stream), Error);
}

TEST(MmioTest, RejectsTruncatedEntries) {
  std::stringstream stream(
      "%%MatrixMarket matrix coordinate real general\n"
      "2 2 3\n"
      "1 1 1.0\n");
  EXPECT_THROW(read_matrix_market(stream), Error);
}

TEST(MmioTest, RejectsOutOfRangeEntry) {
  std::stringstream stream(
      "%%MatrixMarket matrix coordinate real general\n"
      "2 2 1\n"
      "3 1 1.0\n");
  EXPECT_THROW(read_matrix_market(stream), Error);
}

TEST(MmioTest, RejectsBadSizeLine) {
  std::stringstream stream(
      "%%MatrixMarket matrix coordinate real general\n"
      "0 2 1\n");
  EXPECT_THROW(read_matrix_market(stream), Error);
}

TEST(MmioTest, FileRoundTrip) {
  const Csr original = laplacian_1d(10);
  const std::string path = ::testing::TempDir() + "/rsls_mmio_test.mtx";
  write_matrix_market_file(path, original);
  const Csr loaded = read_matrix_market_file(path);
  EXPECT_EQ(loaded.values, original.values);
}

TEST(MmioTest, MissingFileThrows) {
  EXPECT_THROW(read_matrix_market_file("/nonexistent/path.mtx"), Error);
}

TEST(MmioTest, PreservesFullPrecision) {
  CooBuilder b(1, 1);
  b.add(0, 0, 1.0 / 3.0);
  const Csr original = b.to_csr();
  std::stringstream stream;
  write_matrix_market(stream, original);
  const Csr loaded = read_matrix_market(stream);
  EXPECT_DOUBLE_EQ(loaded.at(0, 0), 1.0 / 3.0);
}

}  // namespace
}  // namespace rsls::sparse
