// Exporter tests: JSON writer/parser round trips, and golden-file checks
// on the Chrome trace + RunReport artifacts an observed harness run
// emits — well-formedness, required keys, span nesting invariants, and
// the energy-account sum matching the report total.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <limits>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include <unistd.h>

#include "core/error.hpp"
#include "harness/experiment.hpp"
#include "obs/json.hpp"
#include "obs/recorder.hpp"
#include "sparse/generators.hpp"

namespace rsls {
namespace {

using obs::JsonValue;
using obs::JsonWriter;
using obs::parse_json;

// --- JSON round trips ------------------------------------------------------

TEST(JsonTest, WriterParserRoundTrip) {
  std::ostringstream os;
  JsonWriter json(os);
  json.begin_object();
  json.field("name", "a \"quoted\" \\ string\nwith control\tchars");
  json.field("int", std::int64_t{-42});
  json.field("flag", true);
  json.begin_array("values");
  json.element(0.1);
  json.element(1e-9);
  json.element(-1.5e300);
  json.end_array();
  json.begin_object("nested");
  json.field("pi", 3.141592653589793);
  json.end_object();
  json.end_object();

  const JsonValue doc = parse_json(os.str());
  EXPECT_EQ(doc.at("name").as_string(),
            "a \"quoted\" \\ string\nwith control\tchars");
  EXPECT_DOUBLE_EQ(doc.at("int").as_number(), -42.0);
  EXPECT_TRUE(doc.at("flag").as_bool());
  const auto& values = doc.at("values").as_array();
  ASSERT_EQ(values.size(), 3u);
  // Round-trip exactness is the property the energy invariant rests on.
  EXPECT_EQ(values[0].as_number(), 0.1);
  EXPECT_EQ(values[1].as_number(), 1e-9);
  EXPECT_EQ(values[2].as_number(), -1.5e300);
  EXPECT_EQ(doc.at("nested").at("pi").as_number(), 3.141592653589793);
}

TEST(JsonTest, NonFiniteNumbersBecomeNull) {
  std::ostringstream os;
  JsonWriter json(os);
  json.begin_object();
  json.field("inf", std::numeric_limits<double>::infinity());
  json.field("nan", std::numeric_limits<double>::quiet_NaN());
  json.end_object();
  const JsonValue doc = parse_json(os.str());
  EXPECT_TRUE(doc.at("inf").is_null());
  EXPECT_TRUE(doc.at("nan").is_null());
}

TEST(JsonTest, ParserRejectsMalformedInput) {
  EXPECT_THROW(parse_json(""), Error);
  EXPECT_THROW(parse_json("{"), Error);
  EXPECT_THROW(parse_json("{\"a\":}"), Error);
  EXPECT_THROW(parse_json("[1,2,]"), Error);
  EXPECT_THROW(parse_json("\"unterminated"), Error);
  EXPECT_THROW(parse_json("{} trailing"), Error);
  EXPECT_THROW(parse_json("truthy"), Error);
}

TEST(JsonTest, UnicodeEscapesDecodeToUtf8) {
  // ASCII, Latin-1, BMP, and a supplementary plane code point via a
  // surrogate pair — all decoded to UTF-8 bytes.
  const JsonValue doc = parse_json(
      "\"\\u0041\\u00e9\\u20ac\\ud83d\\ude00\"");
  EXPECT_EQ(doc.as_string(),
            "A\xc3\xa9\xe2\x82\xac\xf0\x9f\x98\x80");
}

TEST(JsonTest, UnicodeEscapeEdgeCases) {
  // Highest BMP code point below the surrogate range, and the highest
  // code point reachable by a surrogate pair (U+10FFFF).
  EXPECT_EQ(parse_json("\"\\ud7ff\"").as_string(), "\xed\x9f\xbf");
  EXPECT_EQ(parse_json("\"\\udbff\\udfff\"").as_string(),
            "\xf4\x8f\xbf\xbf");
  // NUL decodes to a real embedded zero byte.
  const std::string nul = parse_json("\"a\\u0000b\"").as_string();
  ASSERT_EQ(nul.size(), 3u);
  EXPECT_EQ(nul[1], '\0');
}

TEST(JsonTest, MalformedUnicodeEscapesAreRejected) {
  EXPECT_THROW(parse_json("\"\\u12\""), Error);        // truncated
  EXPECT_THROW(parse_json("\"\\u12g4\""), Error);      // bad hex digit
  EXPECT_THROW(parse_json("\"\\ud800\""), Error);      // lone high
  EXPECT_THROW(parse_json("\"\\ud800x\""), Error);     // high, no \u
  EXPECT_THROW(parse_json("\"\\ud800\\u0041\""), Error);  // bad low
  EXPECT_THROW(parse_json("\"\\udc00\""), Error);      // unpaired low
}

TEST(JsonTest, ParserAccessorsEnforceKinds) {
  const JsonValue doc = parse_json("{\"a\":[1,2],\"s\":\"x\"}");
  EXPECT_THROW(doc.at("a").as_string(), Error);
  EXPECT_THROW(doc.at("s").as_number(), Error);
  EXPECT_THROW(doc.at("missing"), Error);
  EXPECT_TRUE(doc.contains("a"));
  EXPECT_FALSE(doc.contains("b"));
}

// --- artifact fixture ------------------------------------------------------

std::string read_file(const std::string& path) {
  std::ifstream is(path);
  EXPECT_TRUE(is.good()) << "missing artifact " << path;
  std::ostringstream os;
  os << is.rdbuf();
  return os.str();
}

/// One small observed LI run; emits both artifacts into gtest's temp dir
/// once and shares the parsed documents across tests.
class ObservedRunTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    // ctest runs each test in its own process, possibly in parallel, and
    // every process re-runs this fixture: the artifact paths must be
    // process-unique or concurrent runs corrupt each other's files.
    const std::string pid = std::to_string(::getpid());
    trace_path_ =
        new std::string(::testing::TempDir() + "obs_trace_" + pid + ".json");
    report_path_ =
        new std::string(::testing::TempDir() + "obs_report_" + pid + ".jsonl");
    std::remove(trace_path_->c_str());
    std::remove(report_path_->c_str());

    sparse::BandedSpdConfig matrix_config;
    matrix_config.n = 192;
    matrix_config.half_bandwidth = 5;
    matrix_config.diag_excess = 1e-2;
    matrix_config.seed = 7;
    harness::ExperimentConfig config;
    config.processes = 4;
    config.faults = 2;
    config.tolerance = 1e-8;
    const harness::Workload workload = harness::Workload::create(
        sparse::banded_spd(matrix_config), config.processes, "banded-192");
    const harness::FfBaseline ff = harness::run_fault_free(workload, config);

    config.observability.enabled = true;
    config.observability.source = "obs_export_test";
    config.observability.trace_path = *trace_path_;
    config.observability.report_path = *report_path_;
    run_ = new harness::SchemeRun(
        harness::run_scheme(workload, "LI", config, ff));

    trace_ = new JsonValue(parse_json(read_file(*trace_path_)));
    report_ = new JsonValue(parse_json(read_file(*report_path_)));
  }

  static void TearDownTestSuite() {
    std::remove(trace_path_->c_str());
    std::remove(report_path_->c_str());
    delete trace_;
    delete report_;
    delete run_;
    delete trace_path_;
    delete report_path_;
    trace_ = report_ = nullptr;
    run_ = nullptr;
    trace_path_ = report_path_ = nullptr;
  }

  static std::string* trace_path_;
  static std::string* report_path_;
  static harness::SchemeRun* run_;
  static JsonValue* trace_;
  static JsonValue* report_;
};

std::string* ObservedRunTest::trace_path_ = nullptr;
std::string* ObservedRunTest::report_path_ = nullptr;
harness::SchemeRun* ObservedRunTest::run_ = nullptr;
JsonValue* ObservedRunTest::trace_ = nullptr;
JsonValue* ObservedRunTest::report_ = nullptr;

// --- Chrome trace ----------------------------------------------------------

TEST_F(ObservedRunTest, TraceHasRequiredTopLevelShape) {
  EXPECT_EQ(trace_->at("displayTimeUnit").as_string(), "ms");
  const auto& other = trace_->at("otherData");
  EXPECT_EQ(other.at("producer").as_string(), "rsls");
  EXPECT_EQ(other.at("scheme").as_string(), "LI");
  EXPECT_DOUBLE_EQ(other.at("ranks").as_number(), 4.0);
  EXPECT_GT(trace_->at("traceEvents").as_array().size(), 0u);
}

TEST_F(ObservedRunTest, TraceEventsCarryRequiredKeys) {
  for (const JsonValue& event : trace_->at("traceEvents").as_array()) {
    const std::string ph = event.at("ph").as_string();
    EXPECT_TRUE(event.contains("name"));
    EXPECT_TRUE(event.contains("pid"));
    if (ph != "M") {
      // Timeline events need a track; process-level metadata does not.
      EXPECT_TRUE(event.contains("tid"));
    }
    if (ph == "X") {
      EXPECT_TRUE(event.contains("ts"));
      EXPECT_TRUE(event.contains("dur"));
      EXPECT_GE(event.at("dur").as_number(), 0.0);
    } else {
      EXPECT_TRUE(ph == "M" || ph == "i" || ph == "C") << "ph=" << ph;
    }
  }
}

TEST_F(ObservedRunTest, TraceNamesAllTracks) {
  // One process_name + thread names for the run track and each rank.
  std::vector<std::string> thread_names;
  bool process_named = false;
  for (const JsonValue& event : trace_->at("traceEvents").as_array()) {
    if (event.at("ph").as_string() != "M") {
      continue;
    }
    if (event.at("name").as_string() == "process_name") {
      process_named = true;
    } else if (event.at("name").as_string() == "thread_name") {
      thread_names.push_back(event.at("args").at("name").as_string());
    }
  }
  EXPECT_TRUE(process_named);
  ASSERT_EQ(thread_names.size(), 5u);  // "run" + 4 ranks
  EXPECT_EQ(thread_names.front(), "run");
}

TEST_F(ObservedRunTest, TraceShowsSolveAndPerRankRecoverySpans) {
  bool solve_on_run_track = false;
  Index recover_spans = 0;
  for (const JsonValue& event : trace_->at("traceEvents").as_array()) {
    if (event.at("ph").as_string() != "X") {
      continue;
    }
    const std::string& name = event.at("name").as_string();
    if (name == "solve" && event.at("tid").as_number() == 0.0) {
      solve_on_run_track = true;
    }
    if (name == "recover") {
      // Recovery spans live on the failed rank's track, below the run
      // track, and record how the recovery was triggered.
      EXPECT_GE(event.at("tid").as_number(), 1.0);
      EXPECT_EQ(event.at("args").at("detail").as_string(), "announced");
      EXPECT_EQ(event.at("args").at("scheme").as_string(), "LI");
      ++recover_spans;
    }
  }
  EXPECT_TRUE(solve_on_run_track);
  EXPECT_EQ(recover_spans, run_->report.recoveries);
}

TEST_F(ObservedRunTest, TraceSpansNestProperlyPerTrack) {
  // Spans (non-charge X events) on one track must be properly nested:
  // any two either disjoint or one containing the other. This is what
  // makes the Perfetto flame graph render without overlap artifacts.
  struct Interval {
    double begin;
    double end;
  };
  std::map<double, std::vector<Interval>> by_tid;
  for (const JsonValue& event : trace_->at("traceEvents").as_array()) {
    if (event.at("ph").as_string() != "X" ||
        event.at("cat").as_string() == "charge") {
      continue;
    }
    const double ts = event.at("ts").as_number();
    by_tid[event.at("tid").as_number()].push_back(
        Interval{ts, ts + event.at("dur").as_number()});
  }
  EXPECT_FALSE(by_tid.empty());
  const double eps = 1e-6;  // trace microseconds
  for (const auto& [tid, intervals] : by_tid) {
    for (std::size_t i = 0; i < intervals.size(); ++i) {
      for (std::size_t j = i + 1; j < intervals.size(); ++j) {
        const Interval& a = intervals[i];
        const Interval& b = intervals[j];
        const bool disjoint =
            a.end <= b.begin + eps || b.end <= a.begin + eps;
        const bool a_in_b =
            a.begin >= b.begin - eps && a.end <= b.end + eps;
        const bool b_in_a =
            b.begin >= a.begin - eps && b.end <= a.end + eps;
        EXPECT_TRUE(disjoint || a_in_b || b_in_a)
            << "overlapping spans on tid " << tid << ": [" << a.begin << ","
            << a.end << ") vs [" << b.begin << "," << b.end << ")";
      }
    }
  }
}

TEST_F(ObservedRunTest, TraceIncludesChargesAndPowerCounters) {
  Index charges = 0;
  Index counters = 0;
  for (const JsonValue& event : trace_->at("traceEvents").as_array()) {
    const std::string ph = event.at("ph").as_string();
    if (ph == "X" && event.at("cat").as_string() == "charge") {
      ++charges;
    } else if (ph == "C") {
      ++counters;
      EXPECT_TRUE(event.at("args").contains("watts"));
    }
  }
  EXPECT_GT(charges, 0);
  EXPECT_GT(counters, 0);
}

// --- RunReport -------------------------------------------------------------

TEST_F(ObservedRunTest, ReportIsOneJsonlLineWithRequiredKeys) {
  const std::string text = read_file(*report_path_);
  // Exactly one line, ending in a newline.
  ASSERT_FALSE(text.empty());
  EXPECT_EQ(text.back(), '\n');
  EXPECT_EQ(std::count(text.begin(), text.end(), '\n'), 1);

  EXPECT_DOUBLE_EQ(report_->at("schema_version").as_number(), 1.0);
  EXPECT_EQ(report_->at("source").as_string(), "obs_export_test");
  EXPECT_EQ(report_->at("matrix").as_string(), "banded-192");
  EXPECT_EQ(report_->at("scheme").as_string(), "LI");
  EXPECT_EQ(report_->at("config").at("processes").as_string(), "4");
  EXPECT_TRUE(report_->at("results").contains("iterations"));
  EXPECT_TRUE(report_->at("metrics").at("counters").contains("faults"));
}

TEST_F(ObservedRunTest, ReportResultsMatchTheRun) {
  const auto& results = report_->at("results");
  EXPECT_DOUBLE_EQ(results.at("faults").as_number(),
                   static_cast<double>(run_->report.faults));
  EXPECT_DOUBLE_EQ(results.at("recoveries").as_number(),
                   static_cast<double>(run_->report.recoveries));
  EXPECT_DOUBLE_EQ(results.at("converged").as_number(), 1.0);
  EXPECT_EQ(results.at("time_s").as_number(), run_->report.time);
  EXPECT_EQ(results.at("energy_j").as_number(), run_->report.energy);
  const auto& counters = report_->at("metrics").at("counters");
  EXPECT_DOUBLE_EQ(counters.at("faults").as_number(),
                   static_cast<double>(run_->report.faults));
  EXPECT_TRUE(counters.contains("recoveries_dispatched"));
}

TEST_F(ObservedRunTest, ReportEnergyPhasesSumToTotal) {
  const auto& energy = report_->at("energy");
  double sum = energy.at("node_constant").as_number() +
               energy.at("core_sleep").as_number();
  const auto& phases = energy.at("phases").as_object();
  EXPECT_EQ(phases.size(), power::kPhaseTagCount);  // every tag, zero or not
  for (const auto& [tag, joules] : phases) {
    sum += joules.as_number();
  }
  const double total = energy.at("total").as_number();
  ASSERT_GT(total, 0.0);
  EXPECT_NEAR(sum / total, 1.0, 1e-9);
  EXPECT_EQ(total, run_->report.energy);
}

TEST_F(ObservedRunTest, ReportRecordsRecoveryHistogram) {
  bool found = false;
  for (const JsonValue& histogram :
       report_->at("metrics").at("histograms").as_array()) {
    if (histogram.at("name").as_string() != "recovery_seconds") {
      continue;
    }
    found = true;
    EXPECT_DOUBLE_EQ(histogram.at("count").as_number(),
                     static_cast<double>(run_->report.recoveries));
    EXPECT_GT(histogram.at("sum").as_number(), 0.0);
    EXPECT_EQ(histogram.at("bounds").as_array().size() + 1,
              histogram.at("bucket_counts").as_array().size());
  }
  EXPECT_TRUE(found);
}

// --- environment overlay ---------------------------------------------------

// --- power-bin energy conservation -----------------------------------------

TEST(PowerBinConservationTest, BinnedProfileConservesChargedCoreEnergy) {
  // The RSLS_OBS_POWER_BIN counter tracks are rendered from the binned
  // power trace; the binning must conserve energy exactly: per node, the
  // profile integral minus the constant floor equals the core joules the
  // charge stream published for that node's ranks, to 1e-9 relative.
  const simrt::MachineConfig machine = harness::machine_for(30);
  simrt::VirtualCluster cluster(machine, 30);  // nodes 0 and 1 populated
  const Seconds bin = 1.7e-4;  // deliberately off every interval boundary
  cluster.enable_power_trace(bin);
  obs::Recorder recorder;
  recorder.attach(cluster);

  using power::Activity;
  using power::PhaseTag;
  cluster.advance_all(0.0103, Activity::kActive, PhaseTag::kSolve);
  cluster.charge_duration(3, 0.0057, Activity::kActive, PhaseTag::kRecover);
  cluster.charge_duration(27, 0.0029, Activity::kMemCopy,
                          PhaseTag::kCheckpoint);
  cluster.sync();
  cluster.allreduce(8 * 1024, PhaseTag::kComm);

  Joules charged_total = 0.0;
  Joules integral_total = 0.0;
  for (Index node = 0; node < 2; ++node) {
    Index ranks_on_node = 0;
    for (Index r = 0; r < cluster.num_ranks(); ++r) {
      if (cluster.node_of(r) == node) {
        ++ranks_on_node;
      }
    }
    const Watts constant =
        cluster.power_model().node_constant_power(machine.sockets_per_node) +
        machine.power.core_sleep *
            static_cast<double>(machine.cores_per_node() - ranks_on_node);
    Joules integral = 0.0;
    for (const auto& sample : cluster.node_power_profile(node)) {
      integral += (sample.power - constant) * bin;
    }
    Joules charged = 0.0;
    for (const auto& charge : recorder.charges()) {
      if (cluster.node_of(charge.rank) == node) {
        charged += charge.core_joules;
      }
    }
    ASSERT_GT(charged, 0.0) << "node " << node;
    EXPECT_NEAR(integral / charged, 1.0, 1e-9) << "node " << node;
    charged_total += charged;
    integral_total += integral;
  }
  EXPECT_NEAR(integral_total / charged_total, 1.0, 1e-9);
}

TEST(ObservabilityEnvTest, EnvironmentSwitchesArtifactsOn) {
  const std::string report_path = ::testing::TempDir() + "obs_env_report_" +
                                  std::to_string(::getpid()) + ".jsonl";
  std::remove(report_path.c_str());
  ASSERT_EQ(setenv("RSLS_RUN_REPORT", report_path.c_str(), 1), 0);

  sparse::BandedSpdConfig matrix_config;
  matrix_config.n = 96;
  matrix_config.half_bandwidth = 4;
  matrix_config.diag_excess = 1e-2;
  matrix_config.seed = 3;
  harness::ExperimentConfig config;
  config.processes = 2;
  config.faults = 1;
  config.tolerance = 1e-8;
  const harness::Workload workload = harness::Workload::create(
      sparse::banded_spd(matrix_config), config.processes, "banded-96");
  const harness::FfBaseline ff = harness::run_fault_free(workload, config);
  harness::run_scheme(workload, "F0", config, ff);
  ASSERT_EQ(unsetenv("RSLS_RUN_REPORT"), 0);

  const JsonValue report = parse_json(read_file(report_path));
  EXPECT_EQ(report.at("scheme").as_string(), "F0");
  EXPECT_EQ(report.at("matrix").as_string(), "banded-96");
  EXPECT_EQ(report.at("source").as_string(), "harness");
}

}  // namespace
}  // namespace rsls
