// Unit tests: the opt-in phase event log.

#include <gtest/gtest.h>

#include <sstream>

#include "core/error.hpp"
#include "simrt/cluster.hpp"
#include "simrt/event_log.hpp"

namespace rsls::simrt {
namespace {

using power::Activity;
using power::PhaseTag;

TEST(EventLogTest, RecordsAndAggregates) {
  EventLog log;
  log.record({0, 0.0, 1.0, Activity::kActive, PhaseTag::kSolve});
  log.record({0, 1.0, 1.5, Activity::kWaiting, PhaseTag::kComm});
  log.record({1, 0.0, 2.0, Activity::kActive, PhaseTag::kSolve});
  EXPECT_EQ(log.size(), 3u);
  EXPECT_DOUBLE_EQ(log.phase_time(PhaseTag::kSolve), 3.0);
  EXPECT_DOUBLE_EQ(log.phase_time(PhaseTag::kComm), 0.5);
  EXPECT_DOUBLE_EQ(log.phase_time(PhaseTag::kCheckpoint), 0.0);
  EXPECT_DOUBLE_EQ(log.busy_time(0), 1.0);
  EXPECT_DOUBLE_EQ(log.busy_time(1), 2.0);
  EXPECT_DOUBLE_EQ(log.utilization(0, 2.0), 0.5);
  EXPECT_DOUBLE_EQ(log.utilization(1, 0.0), 0.0);
}

TEST(EventLogTest, CsvFormat) {
  EventLog log;
  log.record({3, 0.5, 0.75, Activity::kDiskWait, PhaseTag::kCheckpoint});
  std::ostringstream os;
  log.write_csv(os);
  EXPECT_EQ(os.str(),
            "rank,begin,end,activity,tag\n3,0.5,0.75,diskwait,checkpoint\n");
}

TEST(EventLogTest, ActivityNames) {
  EXPECT_STREQ(to_string(Activity::kActive), "active");
  EXPECT_STREQ(to_string(Activity::kWaiting), "waiting");
  EXPECT_STREQ(to_string(Activity::kSleep), "sleep");
  EXPECT_STREQ(to_string(Activity::kMemCopy), "memcopy");
  EXPECT_STREQ(to_string(Activity::kDiskWait), "diskwait");
}

TEST(ClusterEventLogTest, DisabledByDefault) {
  VirtualCluster cluster(paper_node(), 4);
  EXPECT_FALSE(cluster.event_log_enabled());
  EXPECT_THROW(cluster.event_log(), Error);
}

TEST(ClusterEventLogTest, CapturesChargedIntervals) {
  VirtualCluster cluster(paper_node(), 4);
  cluster.enable_event_log();
  cluster.charge_duration(2, 1.0, Activity::kActive, PhaseTag::kSolve);
  cluster.sync(PhaseTag::kComm);
  const auto& log = cluster.event_log();
  // 1 compute interval + 3 waiting intervals from the barrier.
  EXPECT_EQ(log.size(), 4u);
  EXPECT_DOUBLE_EQ(log.phase_time(PhaseTag::kSolve), 1.0);
  EXPECT_DOUBLE_EQ(log.phase_time(PhaseTag::kComm), 3.0);
  EXPECT_DOUBLE_EQ(log.utilization(2, cluster.elapsed()), 1.0);
  EXPECT_DOUBLE_EQ(log.utilization(0, cluster.elapsed()), 0.0);
}

TEST(ClusterEventLogTest, TimesMatchClocks) {
  VirtualCluster cluster(paper_node(), 2);
  cluster.enable_event_log();
  cluster.charge_duration(0, 0.25, Activity::kActive, PhaseTag::kSolve);
  cluster.charge_duration(0, 0.5, Activity::kMemCopy, PhaseTag::kCheckpoint);
  const auto& events = cluster.event_log().events();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_DOUBLE_EQ(events[0].begin, 0.0);
  EXPECT_DOUBLE_EQ(events[0].end, 0.25);
  EXPECT_DOUBLE_EQ(events[1].begin, 0.25);
  EXPECT_DOUBLE_EQ(events[1].end, 0.75);
  EXPECT_DOUBLE_EQ(cluster.now(0), 0.75);
}

TEST(EventLogTest, BoundedLogEvictsOldestAndCountsDrops) {
  EventLog log(2);
  EXPECT_EQ(log.capacity(), 2u);
  log.record({0, 0.0, 1.0, Activity::kActive, PhaseTag::kSolve});
  log.record({1, 1.0, 2.0, Activity::kActive, PhaseTag::kSolve});
  EXPECT_EQ(log.dropped(), 0u);
  log.record({2, 2.0, 3.0, Activity::kActive, PhaseTag::kComm});
  EXPECT_EQ(log.size(), 2u);
  EXPECT_EQ(log.dropped(), 1u);
  const auto events = log.events();
  ASSERT_EQ(events.size(), 2u);
  // Oldest-first eviction: the rank-0 event is gone, newest retained.
  EXPECT_EQ(events[0].rank, 1);
  EXPECT_EQ(events[1].rank, 2);
  // Aggregates cover retained events only.
  EXPECT_DOUBLE_EQ(log.phase_time(PhaseTag::kSolve), 1.0);
}

TEST(EventLogTest, ShrinkingCapacityTrimsExisting) {
  EventLog log;
  for (Index i = 0; i < 5; ++i) {
    log.record({i, 0.0, 1.0, Activity::kActive, PhaseTag::kSolve});
  }
  log.set_capacity(2);
  EXPECT_EQ(log.size(), 2u);
  EXPECT_EQ(log.dropped(), 3u);
  EXPECT_EQ(log.events().front().rank, 3);
}

TEST(ClusterEventLogTest, BoundedClusterLogKeepsNewestCharges) {
  VirtualCluster cluster(paper_node(), 4);
  cluster.enable_event_log(3);
  cluster.charge_duration(2, 1.0, Activity::kActive, PhaseTag::kSolve);
  cluster.sync(PhaseTag::kComm);  // 3 more waiting intervals
  const auto& log = cluster.event_log();
  EXPECT_EQ(log.size(), 3u);
  EXPECT_EQ(log.dropped(), 1u);
  for (const auto& event : log.events()) {
    EXPECT_EQ(event.tag, PhaseTag::kComm);
  }
}

TEST(ClusterEventLogTest, ExternalSinkSeesChargesAndUnregisters) {
  struct CountingSink final : ChargeSink {
    int charges = 0;
    int dvfs = 0;
    void on_charge(const ChargeRecord&) override { ++charges; }
    void on_dvfs_transition(Index, Seconds, Hertz, Hertz) override {
      ++dvfs;
    }
  };
  VirtualCluster cluster(paper_node(), 2);
  CountingSink sink;
  cluster.add_charge_sink(&sink);
  cluster.charge_duration(0, 0.1, Activity::kActive, PhaseTag::kSolve);
  EXPECT_EQ(sink.charges, 1);
  // The transition stall is itself a charged interval, then the mark.
  cluster.set_frequency(0, cluster.config().power.freq.min_hz);
  EXPECT_EQ(sink.dvfs, 1);
  EXPECT_EQ(sink.charges, 2);
  cluster.remove_charge_sink(&sink);
  cluster.charge_duration(0, 0.1, Activity::kActive, PhaseTag::kSolve);
  EXPECT_EQ(sink.charges, 2);
}

TEST(ClusterEventLogTest, EventTimeSumMatchesMakespanPerRank) {
  // Property: per rank, the union of charged events is contiguous (the
  // clock never jumps without a charge), so their total duration equals
  // the rank's clock.
  VirtualCluster cluster(paper_node(), 3);
  cluster.enable_event_log();
  cluster.charge_duration(1, 0.4, Activity::kActive, PhaseTag::kSolve);
  cluster.allreduce(8.0, PhaseTag::kComm);
  cluster.write_disk(1e5, PhaseTag::kCheckpoint);
  for (Index r = 0; r < 3; ++r) {
    Seconds total = 0.0;
    for (const auto& event : cluster.event_log().events()) {
      if (event.rank == r) {
        total += event.end - event.begin;
      }
    }
    EXPECT_NEAR(total, cluster.now(r), 1e-12) << "rank " << r;
  }
}

}  // namespace
}  // namespace rsls::simrt
