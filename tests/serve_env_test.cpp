// Satellite contract of the serve layer: for EVERY knob the server
// accepts, an explicit job-config field beats the daemon's RSLS_*
// environment, and the environment beats the built-in default. The
// table below exercises each knob three ways (default / env-only /
// env + explicit) through the real parse path, and the last test proves
// the resolved config can never be re-overlaid downstream.

#include "serve/job.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "core/env.hpp"
#include "simrt/net/network_config.hpp"

namespace rsls::serve {
namespace {

/// Set an environment variable for one scope; restores on destruction.
class ScopedEnv {
 public:
  ScopedEnv(std::string name, const std::string& value)
      : name_(std::move(name)) {
    const char* old = std::getenv(name_.c_str());
    if (old != nullptr) {
      saved_ = old;
    }
    ::setenv(name_.c_str(), value.c_str(), 1);
  }
  ~ScopedEnv() {
    if (saved_.has_value()) {
      ::setenv(name_.c_str(), saved_->c_str(), 1);
    } else {
      ::unsetenv(name_.c_str());
    }
  }
  ScopedEnv(const ScopedEnv&) = delete;
  ScopedEnv& operator=(const ScopedEnv&) = delete;

 private:
  std::string name_;
  std::optional<std::string> saved_;
};

JobSpec parse(const std::string& json) {
  return parse_job_spec(obs::parse_json(json));
}

/// One row: a server knob, the env var that supplies its default, an
/// env value, the job field that overrides it, and extractors proving
/// which one won.
struct Row {
  std::string knob;
  std::string env_name;
  std::string env_value;
  std::string explicit_json;  // {"field": explicit-value}
  std::function<std::string(const JobSpec&)> read;
  std::string default_expected;
  std::string env_expected;
  std::string explicit_expected;
};

std::vector<Row> rows() {
  using simrt::net::to_string;
  return {
      {"scheme", "RSLS_SERVE_SCHEME", "LSI", "{\"scheme\":\"ESR\"}",
       [](const JobSpec& s) { return s.scheme; }, "CR-M", "LSI", "ESR"},
      {"net_topology", "RSLS_NET_TOPOLOGY", "fat-tree",
       "{\"net_topology\":\"torus3d\"}",
       [](const JobSpec& s) {
         return std::string(to_string(s.config.network->topology));
       },
       "flat", "fat-tree", "torus3d"},
      {"net_collective", "RSLS_NET_COLLECTIVE", "ring",
       "{\"net_collective\":\"binomial-tree\"}",
       [](const JobSpec& s) {
         return std::string(to_string(s.config.network->collective));
       },
       "recursive-doubling", "ring", "binomial-tree"},
      {"solver", "RSLS_SOLVER", "pipelined-cg", "{\"solver\":\"cg\"}",
       [](const JobSpec& s) { return s.config.solver; }, "cg", "pipelined-cg",
       "cg"},
      {"preconditioner", "RSLS_PRECONDITIONER", "jacobi",
       "{\"preconditioner\":\"ic0\"}",
       [](const JobSpec& s) { return s.config.preconditioner; }, "identity",
       "jacobi", "ic0"},
      {"series", "RSLS_SERIES", "1", "{\"series\":false}",
       [](const JobSpec& s) {
         return s.config.observability.series ? "on" : "off";
       },
       "off", "on", "off"},
      {"fault_domains", "RSLS_FAULT_DOMAINS", "4", "{\"fault_domains\":2}",
       [](const JobSpec& s) { return std::to_string(s.config.fault_domains); },
       "0", "4", "2"},
      {"spare_ranks", "RSLS_SPARE_RANKS", "3", "{\"spare_ranks\":1}",
       [](const JobSpec& s) {
         return std::to_string(s.config.recovery.spare_ranks);
       },
       "0", "3", "1"},
      {"recovery_retries", "RSLS_RECOVERY_RETRIES", "2",
       "{\"recovery_retries\":5}",
       [](const JobSpec& s) {
         return std::to_string(s.config.recovery.max_retries);
       },
       "0", "2", "5"},
      {"weibull_shape", "RSLS_WEIBULL_SHAPE", "1.5", "{\"weibull_shape\":0.7}",
       [](const JobSpec& s) {
         return obs::JsonWriter::number(s.config.weibull_shape);
       },
       "0", "1.5", "0.7"},
  };
}

TEST(ServeEnv, ExplicitJobFieldsBeatEnvironmentForEveryServerKnob) {
  for (const Row& row : rows()) {
    SCOPED_TRACE(row.knob);
    // Built-in default (no env, no field).
    EXPECT_EQ(row.read(parse("{}")), row.default_expected);
    // Environment supplies the default when the field is omitted...
    {
      const ScopedEnv env(row.env_name, row.env_value);
      EXPECT_EQ(row.read(parse("{}")), row.env_expected);
      // ...and the explicit field beats the environment.
      EXPECT_EQ(row.read(parse(row.explicit_json)), row.explicit_expected);
    }
    // Without the env the explicit field still lands (sanity).
    EXPECT_EQ(row.read(parse(row.explicit_json)), row.explicit_expected);
  }
}

TEST(ServeEnv, ResolvedConfigCannotBeReOverlaidDownstream) {
  // A resolved spec pins the environment out: run_scheme's overlay is
  // disabled and observability resolution is marked done, so a daemon
  // env change between parse and dispatch cannot leak into the job.
  const JobSpec spec = parse("{}");
  EXPECT_FALSE(spec.config.env_overlay);
  EXPECT_TRUE(spec.config.observability.env_resolved);
  EXPECT_TRUE(spec.config.observability.keep_report);
  EXPECT_TRUE(spec.config.network.has_value());
  EXPECT_EQ(spec.config.observability.source, "serve");

  // resolve_from_env is a no-op on a resolved block even under env.
  const ScopedEnv series("RSLS_SERIES", "1");
  const obs::ObservabilityOptions again =
      obs::resolve_from_env(spec.config.observability);
  EXPECT_FALSE(again.series);
}

TEST(ServeEnv, SpareRanksImplySparePolicyFromEitherSource) {
  {
    const ScopedEnv env("RSLS_SPARE_RANKS", "2");
    const JobSpec spec = parse("{}");
    EXPECT_EQ(spec.config.recovery.policy,
              resilience::RecoveryPolicy::kSpare);
  }
  const JobSpec spec = parse("{\"spare_ranks\":2}");
  EXPECT_EQ(spec.config.recovery.policy, resilience::RecoveryPolicy::kSpare);
  const JobSpec none = parse("{}");
  EXPECT_EQ(none.config.recovery.policy,
            resilience::RecoveryPolicy::kInPlace);
}

TEST(ServeEnv, RejectsUnknownFieldsAndBadValues) {
  EXPECT_THROW(parse("{\"typo_field\":1}"), Error);
  EXPECT_THROW(parse("{\"scheme\":\"NOPE\"}"), Error);
  EXPECT_THROW(parse("{\"matrix\":\"not-a-matrix\"}"), Error);
  EXPECT_THROW(parse("{\"ordering\":\"sideways\"}"), Error);
  EXPECT_THROW(parse("{\"n\":1}"), Error);
  EXPECT_THROW(parse("{\"n\":\"many\"}"), Error);
  EXPECT_THROW(parse("{\"deadline_s\":-1}"), Error);
  EXPECT_THROW(parse("{\"net_topology\":\"mesh\"}"), Error);
  EXPECT_THROW(parse("[1,2,3]"), Error);
}

TEST(ServeEnv, UnknownSolverNamesRejectedWithRosterInMessage) {
  // The structured 400 names the valid roster, like the scheme factory.
  try {
    parse("{\"solver\":\"gmres\"}");
    FAIL() << "expected Error";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("pipelined-cg"), std::string::npos) << what;
  }
  try {
    parse("{\"preconditioner\":\"ilu\"}");
    FAIL() << "expected Error";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("block-jacobi"), std::string::npos) << what;
  }
  // Garbage daemon env is rejected at parse time too: the job inherits
  // a validated name or the submission fails loudly, never silently.
  const ScopedEnv env("RSLS_SOLVER", "gmres");
  EXPECT_THROW(parse("{}"), Error);
  EXPECT_EQ(parse("{\"solver\":\"cg\"}").config.solver, "cg");
}

}  // namespace
}  // namespace rsls::serve
