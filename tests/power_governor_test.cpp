// Unit tests: CPUfreq governor policies.

#include <gtest/gtest.h>

#include "core/error.hpp"
#include "power/governor.hpp"

namespace rsls::power {
namespace {

const FrequencyTable kTable;

TEST(GovernorTest, PerformanceAlwaysMax) {
  const auto gov = make_performance_governor();
  EXPECT_DOUBLE_EQ(gov->next_frequency(kTable, gigahertz(1.2), 0.0),
                   kTable.max_hz);
  EXPECT_DOUBLE_EQ(gov->next_frequency(kTable, gigahertz(2.3), 1.0),
                   kTable.max_hz);
  EXPECT_EQ(gov->name(), "performance");
}

TEST(GovernorTest, PowersaveAlwaysMin) {
  const auto gov = make_powersave_governor();
  EXPECT_DOUBLE_EQ(gov->next_frequency(kTable, gigahertz(2.3), 1.0),
                   kTable.min_hz);
  EXPECT_EQ(gov->name(), "powersave");
}

TEST(GovernorTest, UserspaceHoldsCurrent) {
  const auto gov = make_userspace_governor();
  EXPECT_DOUBLE_EQ(gov->next_frequency(kTable, gigahertz(1.5), 1.0),
                   gigahertz(1.5));
  EXPECT_DOUBLE_EQ(gov->next_frequency(kTable, gigahertz(1.5), 0.0),
                   gigahertz(1.5));
  EXPECT_EQ(gov->name(), "userspace");
}

TEST(GovernorTest, OndemandJumpsToMaxAboveThreshold) {
  const auto gov = make_ondemand_governor();
  EXPECT_DOUBLE_EQ(gov->next_frequency(kTable, gigahertz(1.2), 1.0),
                   kTable.max_hz);
  EXPECT_DOUBLE_EQ(gov->next_frequency(kTable, gigahertz(1.2), 0.96),
                   kTable.max_hz);
}

TEST(GovernorTest, OndemandScalesDownWhenIdle) {
  const auto gov = make_ondemand_governor();
  EXPECT_DOUBLE_EQ(gov->next_frequency(kTable, gigahertz(2.3), 0.0),
                   kTable.min_hz);
  // util 0.7 / threshold 0.95 → 1.7 GHz after snapping: strictly between.
  const Hertz mid = gov->next_frequency(kTable, gigahertz(2.3), 0.7);
  EXPECT_GT(mid, kTable.min_hz);
  EXPECT_LT(mid, kTable.max_hz);
}

TEST(GovernorTest, OndemandProportionalBelowThreshold) {
  OndemandConfig config;
  config.up_threshold = 0.8;
  const auto gov = make_ondemand_governor(config);
  // util 0.4 / threshold 0.8 → half of max, snapped to the grid.
  const Hertz f = gov->next_frequency(kTable, gigahertz(2.3), 0.4);
  EXPECT_NEAR(f, kTable.snap(kTable.max_hz * 0.5), 1.0);
}

TEST(GovernorTest, OndemandRejectsBadUtilization) {
  const auto gov = make_ondemand_governor();
  EXPECT_THROW(gov->next_frequency(kTable, gigahertz(2.3), -0.1), Error);
  EXPECT_THROW(gov->next_frequency(kTable, gigahertz(2.3), 1.5), Error);
}

TEST(GovernorTest, OndemandRejectsBadThreshold) {
  OndemandConfig config;
  config.up_threshold = 0.0;
  EXPECT_THROW(make_ondemand_governor(config), Error);
}

// The Fig. 7a mechanism: an MPI busy-poll looks 100 % utilized, so the
// OS-level governor never down-clocks waiting ranks.
TEST(GovernorTest, BusyPollDefeatsOndemand) {
  EXPECT_DOUBLE_EQ(observed_utilization(Activity::kWaiting), 1.0);
  const auto gov = make_ondemand_governor();
  EXPECT_DOUBLE_EQ(
      gov->next_frequency(kTable, gigahertz(2.3),
                          observed_utilization(Activity::kWaiting)),
      kTable.max_hz);
}

TEST(GovernorTest, DiskWaitLooksIdleToOndemand) {
  EXPECT_LT(observed_utilization(Activity::kDiskWait), 0.1);
  const auto gov = make_ondemand_governor();
  EXPECT_LT(gov->next_frequency(kTable, gigahertz(2.3),
                                observed_utilization(Activity::kDiskWait)),
            gigahertz(1.3));
}

TEST(GovernorTest, ObservedUtilizationTable) {
  EXPECT_DOUBLE_EQ(observed_utilization(Activity::kActive), 1.0);
  EXPECT_DOUBLE_EQ(observed_utilization(Activity::kSleep), 0.0);
  EXPECT_DOUBLE_EQ(observed_utilization(Activity::kMemCopy), 1.0);
}

}  // namespace
}  // namespace rsls::power
