// Unit tests: the work-stealing thread pool behind harness::Runner —
// completion of plain and nested submissions, exception propagation
// through wait_idle(), and the RSLS_JOBS-driven default width.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/thread_pool.hpp"

namespace rsls {
namespace {

/// RAII guard restoring one environment variable on scope exit.
class EnvGuard {
 public:
  explicit EnvGuard(const char* name) : name_(name) {
    const char* value = std::getenv(name);
    if (value != nullptr) {
      saved_ = value;
    }
  }
  ~EnvGuard() {
    if (saved_.has_value()) {
      ::setenv(name_, saved_->c_str(), 1);
    } else {
      ::unsetenv(name_);
    }
  }
  EnvGuard(const EnvGuard&) = delete;
  EnvGuard& operator=(const EnvGuard&) = delete;

 private:
  const char* name_;
  std::optional<std::string> saved_;
};

TEST(ThreadPoolTest, RunsEveryTaskExactlyOnce) {
  ThreadPool pool(4);
  constexpr int kTasks = 200;
  std::vector<std::atomic<int>> hits(kTasks);
  for (int i = 0; i < kTasks; ++i) {
    pool.submit([&hits, i] { hits[static_cast<std::size_t>(i)].fetch_add(1); });
  }
  pool.wait_idle();
  for (int i = 0; i < kTasks; ++i) {
    EXPECT_EQ(hits[static_cast<std::size_t>(i)].load(), 1) << "task " << i;
  }
}

TEST(ThreadPoolTest, ClampsWidthToAtLeastOne) {
  EXPECT_EQ(ThreadPool(0).thread_count(), 1);
  EXPECT_EQ(ThreadPool(-3).thread_count(), 1);
  EXPECT_EQ(ThreadPool(3).thread_count(), 3);
}

TEST(ThreadPoolTest, WaitIdleWithNoTasksReturns) {
  ThreadPool pool(2);
  pool.wait_idle();  // must not hang
  pool.wait_idle();  // and must stay reentrant
}

TEST(ThreadPoolTest, NestedSubmissionsDrainBeforeWaitIdleReturns) {
  // Runner group tasks submit their cell tasks from inside the pool;
  // wait_idle must cover those grandchildren too.
  ThreadPool pool(3);
  std::atomic<int> done{0};
  for (int g = 0; g < 8; ++g) {
    pool.submit([&pool, &done] {
      for (int c = 0; c < 5; ++c) {
        pool.submit([&done] { done.fetch_add(1); });
      }
    });
  }
  pool.wait_idle();
  EXPECT_EQ(done.load(), 8 * 5);
}

TEST(ThreadPoolTest, WaitIdleNeverReturnsWhileSubmitterStillRunning) {
  // Regression: submit() used to publish a task to a deque before
  // incrementing the pending counter, so a thief could pop and finish a
  // nested child inside that window, drive the counter to zero, and
  // wake wait_idle() while the submitting task itself was still
  // running. Many short rounds of instantly-completing children give
  // the race room to show up as parent_done == false.
  for (int round = 0; round < 200; ++round) {
    ThreadPool pool(4);
    std::atomic<bool> parent_done{false};
    std::atomic<int> children{0};
    pool.submit([&pool, &parent_done, &children] {
      for (int c = 0; c < 8; ++c) {
        pool.submit([&children] { children.fetch_add(1); });
      }
      parent_done.store(true);
    });
    pool.wait_idle();
    ASSERT_TRUE(parent_done.load()) << "round " << round;
    ASSERT_EQ(children.load(), 8) << "round " << round;
  }
}

TEST(ThreadPoolTest, FirstExceptionRethrownFromWaitIdle) {
  ThreadPool pool(2);
  std::atomic<int> survivors{0};
  pool.submit([] { throw std::runtime_error("cell failed"); });
  for (int i = 0; i < 10; ++i) {
    pool.submit([&survivors] { survivors.fetch_add(1); });
  }
  EXPECT_THROW(pool.wait_idle(), std::runtime_error);
  // The batch drained despite the failure...
  EXPECT_EQ(survivors.load(), 10);
  // ...and the pool stays usable with a clean error slate.
  pool.submit([&survivors] { survivors.fetch_add(1); });
  pool.wait_idle();
  EXPECT_EQ(survivors.load(), 11);
}

TEST(ThreadPoolTest, DestructorDrainsQueuedWork) {
  std::atomic<int> done{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i) {
      pool.submit([&done] { done.fetch_add(1); });
    }
    // No wait_idle: the destructor must still run everything queued.
  }
  EXPECT_EQ(done.load(), 50);
}

TEST(ThreadPoolTest, StatsCountSubmittedAndExecutedTasks) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.stats().tasks_submitted, 0u);
  constexpr int kTasks = 120;
  std::atomic<int> done{0};
  for (int i = 0; i < kTasks; ++i) {
    pool.submit([&done] { done.fetch_add(1); });
  }
  pool.wait_idle();
  const ThreadPool::Stats stats = pool.stats();
  EXPECT_EQ(stats.tasks_submitted, static_cast<std::uint64_t>(kTasks));
  EXPECT_EQ(stats.tasks_executed, static_cast<std::uint64_t>(kTasks));
  // Every stolen task was also executed, and depth never exceeds what
  // was submitted.
  EXPECT_LE(stats.tasks_stolen, stats.tasks_executed);
  EXPECT_GE(stats.max_queue_depth, 1u);
  EXPECT_LE(stats.max_queue_depth, static_cast<std::uint64_t>(kTasks));
}

TEST(ThreadPoolTest, StatsAreMonotoneAcrossBatches) {
  // Counters never reset: deltas between snapshots stay well defined,
  // so exporting them as monotone metrics counters is sound.
  ThreadPool pool(2);
  ThreadPool::Stats previous = pool.stats();
  for (int batch = 0; batch < 5; ++batch) {
    for (int i = 0; i < 20; ++i) {
      pool.submit([] {});
    }
    pool.wait_idle();
    const ThreadPool::Stats now = pool.stats();
    EXPECT_GE(now.tasks_submitted, previous.tasks_submitted + 20);
    EXPECT_GE(now.tasks_executed, previous.tasks_executed + 20);
    EXPECT_GE(now.tasks_stolen, previous.tasks_stolen);
    EXPECT_GE(now.max_queue_depth, previous.max_queue_depth);
    previous = now;
  }
  EXPECT_EQ(previous.tasks_submitted, previous.tasks_executed);
}

TEST(ThreadPoolTest, StatsMergeAsPlainSums) {
  // Merge-safety: summing snapshots from several pools is the documented
  // aggregation, and the sum of per-pool submitted == sum of executed
  // once both pools are idle.
  ThreadPool a(2);
  ThreadPool b(3);
  for (int i = 0; i < 30; ++i) {
    a.submit([] {});
  }
  for (int i = 0; i < 40; ++i) {
    b.submit([] {});
  }
  a.wait_idle();
  b.wait_idle();
  const ThreadPool::Stats sa = a.stats();
  const ThreadPool::Stats sb = b.stats();
  ThreadPool::Stats merged;
  merged.tasks_submitted = sa.tasks_submitted + sb.tasks_submitted;
  merged.tasks_executed = sa.tasks_executed + sb.tasks_executed;
  merged.tasks_stolen = sa.tasks_stolen + sb.tasks_stolen;
  merged.max_queue_depth = std::max(sa.max_queue_depth, sb.max_queue_depth);
  EXPECT_EQ(merged.tasks_submitted, 70u);
  EXPECT_EQ(merged.tasks_executed, 70u);
  EXPECT_LE(merged.tasks_stolen, merged.tasks_executed);
}

TEST(ThreadPoolTest, DefaultThreadsFollowsRslsJobs) {
  EnvGuard guard("RSLS_JOBS");
  ::unsetenv("RSLS_JOBS");
  EXPECT_EQ(ThreadPool::default_threads(), 1);  // serial by default
  ::setenv("RSLS_JOBS", "5", 1);
  EXPECT_EQ(ThreadPool::default_threads(), 5);
  ::setenv("RSLS_JOBS", "0", 1);
  EXPECT_GE(ThreadPool::default_threads(), 1);  // hardware width
  ::setenv("RSLS_JOBS", "not-a-number", 1);
  EXPECT_EQ(ThreadPool::default_threads(), 1);  // unparsable -> fallback
}

}  // namespace
}  // namespace rsls
