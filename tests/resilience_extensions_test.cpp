// Unit tests: TMR and multi-level checkpointing (the paper's future-work
// extensions).

#include <gtest/gtest.h>

#include <cmath>

#include "core/error.hpp"
#include "harness/experiment.hpp"
#include "harness/scheme_factory.hpp"
#include "resilience/multilevel.hpp"
#include "resilience/resilient_solve.hpp"
#include "resilience/tmr.hpp"
#include "sparse/generators.hpp"
#include "sparse/roster.hpp"

namespace rsls::resilience {
namespace {

struct Fixture {
  dist::DistMatrix a;
  RealVec b;
  RealVec x0;

  explicit Fixture(Index parts = 4)
      : a(sparse::laplacian_1d(64), parts),
        b(sparse::make_rhs(a.global())),
        x0(64, 0.0) {}
};

TEST(TmrTest, TriplesReplication) {
  Tmr tmr;
  EXPECT_EQ(tmr.replica_factor(), 3);
  EXPECT_EQ(tmr.name(), "TMR");
}

TEST(TmrTest, VotesRestoreExactState) {
  Fixture fixture;
  Tmr tmr;
  simrt::VirtualCluster cluster(simrt::paper_node(), 4, 3);
  RecoveryContext ctx{fixture.a, fixture.b, cluster};
  RealVec x(64);
  for (std::size_t i = 0; i < x.size(); ++i) {
    x[i] = static_cast<double>(i);
  }
  tmr.on_iteration(ctx, 1, x);
  const RealVec pristine = x;
  FaultInjector::corrupt_block(fixture.a.partition(), 2, x);
  EXPECT_EQ(tmr.recover(ctx, 1, 2, x), solver::HookAction::kContinue);
  EXPECT_EQ(x, pristine);
  EXPECT_EQ(tmr.votes(), 1);
}

TEST(TmrTest, TriplesEnergyVsSingle) {
  Fixture fixture;
  simrt::VirtualCluster triple(simrt::paper_node(), 4, 3);
  simrt::VirtualCluster single(simrt::paper_node(), 4, 1);
  for (auto* cluster : {&triple, &single}) {
    cluster->advance_all(1.0, power::Activity::kActive,
                         power::PhaseTag::kSolve);
  }
  EXPECT_NEAR(triple.total_energy() / single.total_energy(), 3.0, 1e-9);
}

TEST(TmrTest, EndToEndMatchesFaultFreeIterations) {
  Fixture fixture(8);
  Fixture ff_fixture(8);
  // Fault-free count via RD with no faults (same arithmetic).
  harness::SchemeFactoryConfig factory;
  const auto rd = harness::make_scheme("RD", factory, ff_fixture.x0);
  simrt::VirtualCluster rd_cluster(simrt::paper_node(), 8, 2);
  auto no_faults = FaultInjector::none();
  RealVec x_ff = ff_fixture.x0;
  const auto ff_report = resilient_solve(
      ff_fixture.a, rd_cluster, ff_fixture.b, x_ff, *rd, no_faults, {});

  const auto tmr = harness::make_scheme("TMR", factory, fixture.x0);
  simrt::VirtualCluster cluster(simrt::paper_node(), 8, 3);
  auto injector =
      FaultInjector::evenly_spaced(10, ff_report.cg.iterations, 8, 5);
  RealVec x = fixture.x0;
  const auto report = resilient_solve(fixture.a, cluster, fixture.b, x, *tmr,
                                      injector, {});
  EXPECT_TRUE(report.cg.converged);
  EXPECT_EQ(report.cg.iterations, ff_report.cg.iterations);
}

MultiLevelOptions small_options() {
  MultiLevelOptions options;
  options.l1_interval_iterations = 5;
  options.l2_interval_iterations = 20;
  options.l1_loss_probability = 0.0;
  return options;
}

TEST(MultiLevelTest, ValidatesCadence) {
  MultiLevelOptions options;
  options.l1_interval_iterations = 7;
  options.l2_interval_iterations = 20;  // not a multiple
  EXPECT_THROW(MultiLevelCheckpoint(options, RealVec(4)), Error);
  options.l2_interval_iterations = 21;
  EXPECT_NO_THROW(MultiLevelCheckpoint(options, RealVec(4)));
}

TEST(MultiLevelTest, TakesBothLevels) {
  Fixture fixture;
  MultiLevelCheckpoint scheme(small_options(), fixture.x0);
  simrt::VirtualCluster cluster(simrt::paper_node(), 4);
  RecoveryContext ctx{fixture.a, fixture.b, cluster};
  RealVec x(64, 1.0);
  for (Index k = 1; k <= 40; ++k) {
    scheme.on_iteration(ctx, k, x);
  }
  // L1 at 5,10,15,25,30,35 (20 and 40 go to L2).
  EXPECT_EQ(scheme.l1_checkpoints(), 6);
  EXPECT_EQ(scheme.l2_checkpoints(), 2);
}

TEST(MultiLevelTest, PrefersNewestLevelOne) {
  Fixture fixture;
  MultiLevelCheckpoint scheme(small_options(), fixture.x0);
  simrt::VirtualCluster cluster(simrt::paper_node(), 4);
  RecoveryContext ctx{fixture.a, fixture.b, cluster};
  RealVec x(64, 1.0);
  scheme.on_iteration(ctx, 20, x);  // L2 with all-1
  std::fill(x.begin(), x.end(), 2.0);
  scheme.on_iteration(ctx, 25, x);  // L1 with all-2 (newer)
  std::fill(x.begin(), x.end(), 9.0);
  FaultInjector::corrupt_block(fixture.a.partition(), 1, x);
  scheme.recover(ctx, 27, 1, x);
  for (const Real v : x) {
    EXPECT_DOUBLE_EQ(v, 2.0);
  }
  EXPECT_EQ(scheme.l2_rollbacks(), 0);
  EXPECT_EQ(scheme.iterations_rolled_back(), 2);
}

TEST(MultiLevelTest, FallsBackToDiskWhenL1Lost) {
  Fixture fixture;
  MultiLevelOptions options = small_options();
  options.l1_loss_probability = 1.0;  // every fault destroys L1
  MultiLevelCheckpoint scheme(options, fixture.x0);
  simrt::VirtualCluster cluster(simrt::paper_node(), 4);
  RecoveryContext ctx{fixture.a, fixture.b, cluster};
  RealVec x(64, 1.0);
  scheme.on_iteration(ctx, 20, x);  // L2 with all-1
  std::fill(x.begin(), x.end(), 2.0);
  scheme.on_iteration(ctx, 25, x);  // L1 with all-2, but it will be lost
  std::fill(x.begin(), x.end(), 9.0);
  FaultInjector::corrupt_block(fixture.a.partition(), 0, x);
  scheme.recover(ctx, 27, 0, x);
  for (const Real v : x) {
    EXPECT_DOUBLE_EQ(v, 1.0);  // the L2 state
  }
  EXPECT_EQ(scheme.l2_rollbacks(), 1);
  EXPECT_EQ(scheme.iterations_rolled_back(), 7);
}

TEST(MultiLevelTest, NoCheckpointFallsBackToInitialGuess) {
  Fixture fixture;
  RealVec guess(64, 0.5);
  MultiLevelCheckpoint scheme(small_options(), guess);
  simrt::VirtualCluster cluster(simrt::paper_node(), 4);
  RecoveryContext ctx{fixture.a, fixture.b, cluster};
  RealVec x(64, 3.0);
  FaultInjector::corrupt_block(fixture.a.partition(), 1, x);
  scheme.recover(ctx, 3, 1, x);
  for (const Real v : x) {
    EXPECT_DOUBLE_EQ(v, 0.5);
  }
}

TEST(MultiLevelTest, CheaperThanPureDiskAtSameCadence) {
  // At the same rollback protection (equal cadence), CR-2L writes most of
  // its checkpoints to the cheap memory level and only every 8th to disk,
  // so it beats pure CR-D — provided the vector is large enough that the
  // disk bandwidth term matters (use a roster-sized matrix).
  const auto& entry = sparse::roster_entry("crystm02");
  const auto workload =
      harness::Workload::create(entry.make(/*quick=*/true), 24);
  harness::ExperimentConfig config;
  config.processes = 24;
  config.faults = 10;
  config.scheme.cr_interval_iterations = 40;
  const auto ff = harness::run_fault_free(workload, config);
  const auto crd = harness::run_scheme(workload, "CR-D", config, ff);

  MultiLevelOptions options;
  options.l1_interval_iterations = 40;   // same cadence as CR-D
  options.l2_interval_iterations = 320;  // disk only every 8th checkpoint
  options.l1_loss_probability = 0.3;
  MultiLevelCheckpoint scheme(options, workload.x0);
  const auto cr2l = harness::run_scheme(workload, "CR-2L", config, ff,
                                        {.scheme = &scheme});

  EXPECT_TRUE(cr2l.report.cg.converged);
  EXPECT_GT(scheme.l1_checkpoints(), scheme.l2_checkpoints());
  EXPECT_LT(cr2l.time_ratio, crd.time_ratio);
}

}  // namespace
}  // namespace rsls::resilience
