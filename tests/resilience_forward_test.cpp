// Unit tests: forward recovery schemes — reconstruction accuracy ordering
// (LI/LSI better than F0/FI), construction cost accounting, the exact
// LU/QR baselines, and the DVFS policy side effects.

#include <gtest/gtest.h>

#include <cmath>

#include "core/error.hpp"
#include "dist/dist_matrix.hpp"
#include "resilience/fault.hpp"
#include "resilience/forward.hpp"
#include "sparse/generators.hpp"
#include "sparse/roster.hpp"
#include "sparse/vector_ops.hpp"

namespace rsls::resilience {
namespace {

using power::PhaseTag;

struct Fixture {
  dist::DistMatrix a;
  RealVec b;
  RealVec x_converged;  // a good iterate (the exact solution: all ones)
  simrt::VirtualCluster cluster;

  explicit Fixture(Index parts = 8)
      : a(sparse::banded_spd({128, 4, 1.0, 0.05, 0.0, 77}), parts),
        b(sparse::make_rhs(a.global())),
        x_converged(128, 1.0),
        cluster(simrt::paper_node(), parts) {}

  RecoveryContext ctx() { return RecoveryContext{a, b, cluster}; }
};

/// Error of the recovered block vs the pre-fault iterate.
Real recovery_error(const Fixture& fixture, RealVec x) {
  RealVec diff(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) {
    diff[i] = x[i] - fixture.x_converged[i];
  }
  return sparse::norm2(diff);
}

RealVec corrupted(const Fixture& fixture, Index failed) {
  RealVec x = fixture.x_converged;
  FaultInjector::corrupt_block(fixture.a.partition(), failed, x);
  return x;
}

TEST(ForwardRecoveryTest, F0FillsZeros) {
  Fixture fixture;
  auto scheme = ForwardRecovery::f0();
  RealVec x = corrupted(fixture, 2);
  auto ctx = fixture.ctx();
  const auto action = scheme->recover(ctx, 10, 2, x);
  EXPECT_EQ(action, solver::HookAction::kRestart);
  const auto& part = fixture.a.partition();
  for (Index i = part.begin(2); i < part.end(2); ++i) {
    EXPECT_DOUBLE_EQ(x[static_cast<std::size_t>(i)], 0.0);
  }
  EXPECT_EQ(scheme->recoveries(), 1);
}

TEST(ForwardRecoveryTest, FiFillsInitialGuess) {
  Fixture fixture;
  RealVec guess(128, 0.25);
  auto scheme = ForwardRecovery::fi(guess);
  RealVec x = corrupted(fixture, 1);
  auto ctx = fixture.ctx();
  scheme->recover(ctx, 10, 1, x);
  const auto& part = fixture.a.partition();
  for (Index i = part.begin(1); i < part.end(1); ++i) {
    EXPECT_DOUBLE_EQ(x[static_cast<std::size_t>(i)], 0.25);
  }
}

TEST(ForwardRecoveryTest, AssignmentSchemesChargeNothing) {
  Fixture fixture;
  auto scheme = ForwardRecovery::f0();
  RealVec x = corrupted(fixture, 0);
  auto ctx = fixture.ctx();
  scheme->recover(ctx, 10, 0, x);
  EXPECT_DOUBLE_EQ(fixture.cluster.elapsed(), 0.0);
  EXPECT_DOUBLE_EQ(scheme->construction_seconds(), 0.0);
}

TEST(ForwardRecoveryTest, LiRecoversAccurately) {
  Fixture fixture;
  auto scheme = ForwardRecovery::li_cg(1e-10);
  RealVec x = corrupted(fixture, 3);
  auto ctx = fixture.ctx();
  const auto action = scheme->recover(ctx, 10, 3, x);
  EXPECT_EQ(action, solver::HookAction::kRestart);
  // The iterate is exact away from the fault, so LI's interpolation from
  // neighbours is very accurate.
  EXPECT_LT(recovery_error(fixture, x), 1e-6);
  EXPECT_GT(scheme->construction_seconds(), 0.0);
  EXPECT_EQ(scheme->construction_windows().size(), 1u);
}

TEST(ForwardRecoveryTest, LsiRecoversAccurately) {
  Fixture fixture;
  auto scheme = ForwardRecovery::lsi_cg(1e-10);
  RealVec x = corrupted(fixture, 3);
  auto ctx = fixture.ctx();
  scheme->recover(ctx, 10, 3, x);
  EXPECT_LT(recovery_error(fixture, x), 1e-5);
}

TEST(ForwardRecoveryTest, InterpolationBeatsAssignment) {
  // The §5.2 accuracy ordering on a converged iterate.
  Fixture f0_fixture, li_fixture;
  auto f0 = ForwardRecovery::f0();
  auto li = ForwardRecovery::li_cg(1e-10);
  RealVec x_f0 = corrupted(f0_fixture, 4);
  RealVec x_li = corrupted(li_fixture, 4);
  auto ctx_f0 = f0_fixture.ctx();
  auto ctx_li = li_fixture.ctx();
  f0->recover(ctx_f0, 10, 4, x_f0);
  li->recover(ctx_li, 10, 4, x_li);
  EXPECT_LT(recovery_error(li_fixture, x_li),
            0.01 * recovery_error(f0_fixture, x_f0));
}

TEST(ForwardRecoveryTest, LuBaselineMatchesTightCg) {
  Fixture lu_fixture, cg_fixture;
  auto lu = ForwardRecovery::li_lu();
  auto cg = ForwardRecovery::li_cg(1e-12);
  RealVec x_lu = corrupted(lu_fixture, 5);
  RealVec x_cg = corrupted(cg_fixture, 5);
  auto ctx_lu = lu_fixture.ctx();
  auto ctx_cg = cg_fixture.ctx();
  lu->recover(ctx_lu, 10, 5, x_lu);
  cg->recover(ctx_cg, 10, 5, x_cg);
  for (std::size_t i = 0; i < x_lu.size(); ++i) {
    EXPECT_NEAR(x_lu[i], x_cg[i], 1e-6);
  }
}

TEST(ForwardRecoveryTest, QrBaselineMatchesTightCg) {
  Fixture qr_fixture, cg_fixture;
  auto qr = ForwardRecovery::lsi_qr();
  auto cg = ForwardRecovery::lsi_cg(1e-12);
  RealVec x_qr = corrupted(qr_fixture, 2);
  RealVec x_cg = corrupted(cg_fixture, 2);
  auto ctx_qr = qr_fixture.ctx();
  auto ctx_cg = cg_fixture.ctx();
  qr->recover(ctx_qr, 10, 2, x_qr);
  cg->recover(ctx_cg, 10, 2, x_cg);
  for (std::size_t i = 0; i < x_qr.size(); ++i) {
    EXPECT_NEAR(x_qr[i], x_cg[i], 1e-5);
  }
}

TEST(ForwardRecoveryTest, LooserToleranceIsCheaper) {
  Fixture loose_fixture, tight_fixture;
  auto loose = ForwardRecovery::li_cg(1e-2);
  auto tight = ForwardRecovery::li_cg(1e-12);
  RealVec x_loose = corrupted(loose_fixture, 1);
  RealVec x_tight = corrupted(tight_fixture, 1);
  auto ctx_loose = loose_fixture.ctx();
  auto ctx_tight = tight_fixture.ctx();
  loose->recover(ctx_loose, 10, 1, x_loose);
  tight->recover(ctx_tight, 10, 1, x_tight);
  EXPECT_LT(loose->construction_seconds(), tight->construction_seconds());
}

TEST(ForwardRecoveryTest, DvfsRestoresFrequenciesAndSavesEnergy) {
  Fixture plain_fixture, dvfs_fixture;
  dvfs_fixture.cluster.set_governor(power::make_userspace_governor());
  plain_fixture.cluster.set_governor(power::make_userspace_governor());
  auto plain = ForwardRecovery::li_cg(1e-10, /*dvfs=*/false);
  auto dvfs = ForwardRecovery::li_cg(1e-10, /*dvfs=*/true);
  RealVec x_plain = corrupted(plain_fixture, 3);
  RealVec x_dvfs = corrupted(dvfs_fixture, 3);
  auto ctx_plain = plain_fixture.ctx();
  auto ctx_dvfs = dvfs_fixture.ctx();
  plain->recover(ctx_plain, 10, 3, x_plain);
  dvfs->recover(ctx_dvfs, 10, 3, x_dvfs);
  // Frequencies restored to max afterwards.
  for (Index r = 0; r < 8; ++r) {
    EXPECT_DOUBLE_EQ(dvfs_fixture.cluster.frequency(r),
                     dvfs_fixture.cluster.config().power.freq.max_hz);
  }
  // Identical numerics.
  for (std::size_t i = 0; i < x_plain.size(); ++i) {
    EXPECT_DOUBLE_EQ(x_plain[i], x_dvfs[i]);
  }
  // The waiting ranks idled at min frequency: less energy in kIdleWait.
  EXPECT_LT(
      dvfs_fixture.cluster.energy().core_energy(PhaseTag::kIdleWait),
      plain_fixture.cluster.energy().core_energy(PhaseTag::kIdleWait));
}

TEST(ForwardRecoveryTest, ConstructionSynchronizesCluster) {
  Fixture fixture;
  auto scheme = ForwardRecovery::li_cg(1e-8);
  RealVec x = corrupted(fixture, 0);
  auto ctx = fixture.ctx();
  scheme->recover(ctx, 10, 0, x);
  const Seconds t0 = fixture.cluster.now(0);
  for (Index r = 1; r < 8; ++r) {
    EXPECT_DOUBLE_EQ(fixture.cluster.now(r), t0);
  }
}

TEST(ForwardRecoveryTest, SchemeNames) {
  EXPECT_EQ(ForwardRecovery::f0()->name(), "F0");
  EXPECT_EQ(ForwardRecovery::fi({})->name(), "FI");
  EXPECT_EQ(ForwardRecovery::li_cg()->name(), "LI");
  EXPECT_EQ(ForwardRecovery::li_cg(1e-6, true)->name(), "LI-DVFS");
  EXPECT_EQ(ForwardRecovery::li_lu()->name(), "LI(LU)");
  EXPECT_EQ(ForwardRecovery::lsi_cg()->name(), "LSI");
  EXPECT_EQ(ForwardRecovery::lsi_cg(1e-6, true)->name(), "LSI-DVFS");
  EXPECT_EQ(ForwardRecovery::lsi_qr()->name(), "LSI(QR)");
}

TEST(ForwardRecoveryTest, InvalidOptionCombinationsRejected) {
  ForwardRecoveryOptions options;
  options.kind = FwKind::kZero;
  options.method = ConstructionMethod::kLocalCg;
  EXPECT_THROW(ForwardRecovery{options}, Error);
  options.kind = FwKind::kLinear;
  options.method = ConstructionMethod::kAssignment;
  EXPECT_THROW(ForwardRecovery{options}, Error);
}

TEST(ForwardRecoveryTest, MeanConstructionSeconds) {
  Fixture fixture;
  auto scheme = ForwardRecovery::li_cg(1e-8);
  EXPECT_DOUBLE_EQ(scheme->mean_construction_seconds(), 0.0);
  RealVec x = corrupted(fixture, 1);
  auto ctx = fixture.ctx();
  scheme->recover(ctx, 10, 1, x);
  EXPECT_NEAR(scheme->mean_construction_seconds(),
              scheme->construction_seconds(), 1e-15);
}

}  // namespace
}  // namespace rsls::resilience
