// Unit + property tests: matrix statistics and the 14-entry roster.

#include <gtest/gtest.h>

#include "core/error.hpp"
#include "sparse/generators.hpp"
#include "sparse/matrix_stats.hpp"
#include "sparse/roster.hpp"
#include "sparse/vector_ops.hpp"

namespace rsls::sparse {
namespace {

TEST(MatrixStatsTest, LaplacianValues) {
  const auto stats = compute_stats(laplacian_1d(10));
  EXPECT_EQ(stats.rows, 10);
  EXPECT_EQ(stats.nnz, 28);
  EXPECT_EQ(stats.bandwidth, 1);
  EXPECT_EQ(stats.max_nnz_per_row, 3);
  EXPECT_TRUE(stats.symmetric);
  // 2 / (1+1) = 1 on interior rows, 2/1 on boundary rows → min is 1.
  EXPECT_NEAR(stats.min_diag_dominance, 1.0, 1e-12);
}

TEST(MatrixStatsTest, MeanIndexDistance) {
  const auto near = compute_stats(laplacian_1d(64));
  IrregularSpdConfig config;
  config.n = 64;
  config.extra_per_row = 4;
  config.diag_excess = 0.1;
  config.seed = 3;
  const auto far = compute_stats(irregular_spd(config));
  EXPECT_LT(near.mean_index_distance, 1.0);
  EXPECT_GT(far.mean_index_distance, 5.0);
}

TEST(OffBlockCouplingTest, DiagonalMatrixIsZero) {
  const Csr d = diagonal_spd(16, 1.0, 2.0, 1);
  EXPECT_DOUBLE_EQ(off_block_coupling(d, 4), 0.0);
}

TEST(OffBlockCouplingTest, SinglePartIsZero) {
  EXPECT_DOUBLE_EQ(off_block_coupling(laplacian_1d(16), 1), 0.0);
}

TEST(OffBlockCouplingTest, TridiagonalKnownValue) {
  // n=16, 4 parts: 3 block boundaries, each contributing 2 off-block
  // entries out of nnz = 16 + 2·15 = 46.
  EXPECT_NEAR(off_block_coupling(laplacian_1d(16), 4), 6.0 / 46.0, 1e-12);
}

TEST(OffBlockCouplingTest, IncreasesWithParts) {
  const Csr a = laplacian_2d(12, 12);
  EXPECT_LE(off_block_coupling(a, 2), off_block_coupling(a, 12));
}

TEST(MatrixStatsTest, ToStringContainsFields) {
  const auto text = to_string(compute_stats(laplacian_1d(5)));
  EXPECT_NE(text.find("rows=5"), std::string::npos);
  EXPECT_NE(text.find("sym=yes"), std::string::npos);
}

TEST(RosterTest, HasFourteenEntries) {
  EXPECT_EQ(roster().size(), 14u);
}

TEST(RosterTest, LookupWithAndWithoutPrefix) {
  EXPECT_EQ(roster_entry("Kuu").name, "syn:Kuu");
  EXPECT_EQ(roster_entry("syn:Kuu").name, "syn:Kuu");
  EXPECT_THROW(roster_entry("nonexistent"), Error);
}

TEST(RosterTest, MakeRhsIsRowSum) {
  const Csr a = laplacian_1d(4);
  const RealVec b = make_rhs(a);
  // A·1: interior rows sum to 0, boundary rows to 1.
  EXPECT_DOUBLE_EQ(b[0], 1.0);
  EXPECT_DOUBLE_EQ(b[1], 0.0);
  EXPECT_DOUBLE_EQ(b[3], 1.0);
}

// Property sweep over all roster entries (quick variants to stay fast).
class RosterEntryTest : public ::testing::TestWithParam<std::string> {};

TEST_P(RosterEntryTest, QuickMatrixIsWellFormedSymmetric) {
  const auto& entry = roster_entry(GetParam());
  const Csr a = entry.make(/*quick=*/true);
  validate(a);
  EXPECT_TRUE(is_symmetric(a)) << entry.name;
  EXPECT_GT(a.rows, 0);
  EXPECT_EQ(a.rows, a.cols);
}

TEST_P(RosterEntryTest, QuickVariantIsSmaller) {
  const auto& entry = roster_entry(GetParam());
  EXPECT_LE(entry.make(true).rows, entry.make(false).rows);
}

TEST_P(RosterEntryTest, PaperMetadataPresent) {
  const auto& entry = roster_entry(GetParam());
  EXPECT_GT(entry.paper_rows, 0);
  EXPECT_GT(entry.paper_nnz_per_row, 0);
  EXPECT_GT(entry.paper_iters, 0);
  EXPECT_FALSE(entry.problem_kind.empty());
  EXPECT_FALSE(entry.structure.empty());
}

TEST_P(RosterEntryTest, DeterministicAcrossCalls) {
  const auto& entry = roster_entry(GetParam());
  const Csr a = entry.make(true);
  const Csr b = entry.make(true);
  EXPECT_EQ(a.values, b.values);
  EXPECT_EQ(a.col_idx, b.col_idx);
}

std::vector<std::string> roster_names() {
  std::vector<std::string> names;
  for (const auto& entry : roster()) {
    names.push_back(entry.name);
  }
  return names;
}

INSTANTIATE_TEST_SUITE_P(AllRosterEntries, RosterEntryTest,
                         ::testing::ValuesIn(roster_names()),
                         [](const auto& info) {
                           std::string name = info.param.substr(4);
                           return name;
                         });

}  // namespace
}  // namespace rsls::sparse
