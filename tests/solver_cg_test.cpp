// Unit tests: distributed CG driver against the sequential reference,
// plus hook/restart semantics.

#include <gtest/gtest.h>

#include <cmath>

#include "core/error.hpp"
#include "dist/dist_matrix.hpp"
#include "solver/cg.hpp"
#include "solver/reference_cg.hpp"
#include "sparse/coo.hpp"
#include "sparse/generators.hpp"
#include "sparse/roster.hpp"
#include "sparse/vector_ops.hpp"

namespace rsls::solver {
namespace {

using power::PhaseTag;

simrt::MachineConfig one_node() { return simrt::paper_node(); }

TEST(ReferenceCgTest, SolvesDiagonalExactly) {
  const sparse::Csr a = sparse::diagonal_spd(16, 1.0, 4.0, 1);
  RealVec x_true(16, 3.0);
  RealVec b(16);
  sparse::spmv(a, x_true, b);
  RealVec x(16, 0.0);
  const auto result = reference_cg(a, b, x);
  EXPECT_TRUE(result.converged);
  for (const Real v : x) {
    EXPECT_NEAR(v, 3.0, 1e-8);
  }
}

TEST(ReferenceCgTest, ReportsResidual) {
  const sparse::Csr a = sparse::laplacian_2d(8, 8);
  const RealVec b = sparse::make_rhs(a);
  RealVec x(64, 0.0);
  const auto result = reference_cg(a, b, x, 1e-12);
  EXPECT_TRUE(result.converged);
  EXPECT_LE(result.relative_residual, 1e-12);
  EXPECT_NEAR(sparse::residual_norm(a, x, b) / sparse::norm2(b),
              result.relative_residual, 1e-12);
}

TEST(DistCgTest, MatchesReferenceIterationsAndSolution) {
  const sparse::Csr global = sparse::laplacian_2d(10, 10);
  const RealVec b = sparse::make_rhs(global);
  RealVec x_ref(100, 0.0);
  const auto ref = reference_cg(global, b, x_ref, 1e-12);

  const dist::DistMatrix a(global, 8);
  simrt::VirtualCluster cluster(one_node(), 8);
  RealVec x(100, 0.0);
  CgOptions options;
  const auto result = cg_solve(a, cluster, b, x, options);
  EXPECT_TRUE(result.converged);
  // The distributed driver performs identical arithmetic.
  EXPECT_EQ(result.iterations, ref.iterations);
  for (std::size_t i = 0; i < 100; ++i) {
    EXPECT_NEAR(x[i], x_ref[i], 1e-10);
  }
}

TEST(DistCgTest, ChargesTimeAndEnergy) {
  const dist::DistMatrix a(sparse::laplacian_2d(8, 8), 4);
  simrt::VirtualCluster cluster(one_node(), 4);
  const RealVec b = sparse::make_rhs(a.global());
  RealVec x(64, 0.0);
  cg_solve(a, cluster, b, x, {});
  EXPECT_GT(cluster.elapsed(), 0.0);
  EXPECT_GT(cluster.energy().core_energy(PhaseTag::kSolve), 0.0);
}

TEST(DistCgTest, RecordsResidualHistory) {
  const dist::DistMatrix a(sparse::laplacian_2d(6, 6), 4);
  simrt::VirtualCluster cluster(one_node(), 4);
  const RealVec b = sparse::make_rhs(a.global());
  RealVec x(36, 0.0);
  CgOptions options;
  options.record_residual_history = true;
  const auto result = cg_solve(a, cluster, b, x, options);
  // Initial entry + one per iteration.
  EXPECT_EQ(result.residual_history.size(),
            static_cast<std::size_t>(result.iterations) + 1);
  EXPECT_LE(result.residual_history.back(), 1e-12);
  EXPECT_NEAR(result.residual_history.front(), 1.0, 1e-12);
}

TEST(DistCgTest, MaxIterationsRespected) {
  const dist::DistMatrix a(sparse::laplacian_2d(12, 12), 4);
  simrt::VirtualCluster cluster(one_node(), 4);
  const RealVec b = sparse::make_rhs(a.global());
  RealVec x(144, 0.0);
  CgOptions options;
  options.max_iterations = 5;
  const auto result = cg_solve(a, cluster, b, x, options);
  EXPECT_FALSE(result.converged);
  EXPECT_EQ(result.iterations, 5);
}

TEST(DistCgTest, HookCalledEveryIteration) {
  const dist::DistMatrix a(sparse::laplacian_2d(6, 6), 2);
  simrt::VirtualCluster cluster(one_node(), 2);
  const RealVec b = sparse::make_rhs(a.global());
  RealVec x(36, 0.0);
  Index calls = 0;
  const auto result = cg_solve(a, cluster, b, x, {},
                               [&calls](const CgIterationView& view) {
                                 EXPECT_EQ(view.iteration, calls + 1);
                                 EXPECT_GE(view.relative_residual, 0.0);
                                 ++calls;
                                 return HookAction::kContinue;
                               });
  EXPECT_EQ(calls, result.iterations);
}

TEST(DistCgTest, RestartAfterPerturbationStillConverges) {
  const dist::DistMatrix a(sparse::laplacian_2d(8, 8), 4);
  simrt::VirtualCluster cluster(one_node(), 4);
  const RealVec b = sparse::make_rhs(a.global());
  RealVec x(64, 0.0);
  bool perturbed = false;
  const auto result = cg_solve(
      a, cluster, b, x, {},
      [&perturbed](const CgIterationView& view) {
        if (!perturbed && view.iteration == 10) {
          perturbed = true;
          // Clobber part of the iterate: CG must restart and still reach
          // the solution.
          for (std::size_t i = 0; i < 16; ++i) {
            view.x[i] = 100.0;
          }
          return HookAction::kRestart;
        }
        return HookAction::kContinue;
      });
  EXPECT_TRUE(perturbed);
  EXPECT_TRUE(result.converged);
  for (const Real v : x) {
    EXPECT_NEAR(v, 1.0, 1e-8);  // b = A·1
  }
}

TEST(DistCgTest, ExtraIterationsTaggedBeyondFfCount) {
  const dist::DistMatrix a(sparse::laplacian_2d(8, 8), 4);
  const RealVec b = sparse::make_rhs(a.global());

  // First find the FF iteration count.
  RealVec x0(64, 0.0);
  simrt::VirtualCluster ff_cluster(one_node(), 4);
  const auto ff = cg_solve(a, ff_cluster, b, x0, {});
  EXPECT_DOUBLE_EQ(
      ff_cluster.energy().core_energy(PhaseTag::kExtraIter), 0.0);

  // Now run with a perturbation and the FF count declared: the run takes
  // longer and the surplus lands in kExtraIter.
  simrt::VirtualCluster cluster(one_node(), 4);
  RealVec x(64, 0.0);
  CgOptions options;
  options.ff_iterations = ff.iterations;
  bool perturbed = false;
  const auto result = cg_solve(
      a, cluster, b, x, options,
      [&perturbed, &ff](const CgIterationView& view) {
        if (!perturbed && view.iteration == ff.iterations / 2) {
          perturbed = true;
          for (std::size_t i = 0; i < 16; ++i) {
            view.x[i] = 0.0;
          }
          return HookAction::kRestart;
        }
        return HookAction::kContinue;
      });
  EXPECT_GT(result.iterations, ff.iterations);
  EXPECT_GT(cluster.energy().core_energy(PhaseTag::kExtraIter), 0.0);
}

TEST(DistCgTest, NonSpdDetected) {
  sparse::CooBuilder builder(2, 2);
  builder.add(0, 0, 1.0);
  builder.add(1, 1, -1.0);
  const dist::DistMatrix a(builder.to_csr(), 2);
  simrt::VirtualCluster cluster(one_node(), 2);
  const RealVec b = {1.0, 1.0};
  RealVec x(2, 0.0);
  EXPECT_THROW(cg_solve(a, cluster, b, x, {}), Error);
}

TEST(DistCgTest, InvariantToProcessCount) {
  // The arithmetic is independent of the partition: iteration counts and
  // solutions agree across process counts (paper Table 4's FF column).
  const sparse::Csr global = sparse::laplacian_2d(9, 9);
  const RealVec b = sparse::make_rhs(global);
  Index first_iterations = -1;
  for (const Index p : {2, 4, 16}) {
    const dist::DistMatrix a(global, p);
    simrt::VirtualCluster cluster(one_node(), p);
    RealVec x(81, 0.0);
    const auto result = cg_solve(a, cluster, b, x, {});
    if (first_iterations < 0) {
      first_iterations = result.iterations;
    }
    EXPECT_EQ(result.iterations, first_iterations);
  }
}

}  // namespace
}  // namespace rsls::solver
