// Integration + property tests: full resilient solves — every scheme must
// restore convergence to the target tolerance for every fault plan, and
// the key paper orderings must hold end-to-end.

#include <gtest/gtest.h>

#include <cmath>

#include "core/error.hpp"

#include "harness/scheme_factory.hpp"
#include "resilience/resilient_solve.hpp"
#include "sparse/generators.hpp"
#include "sparse/roster.hpp"

namespace rsls::resilience {
namespace {

struct SolveSetup {
  dist::DistMatrix a;
  RealVec b;
  RealVec x0;

  explicit SolveSetup(sparse::Csr matrix, Index parts)
      : a(std::move(matrix), parts),
        b(sparse::make_rhs(a.global())),
        x0(static_cast<std::size_t>(a.rows()), 0.0) {}
};

ResilientSolveReport run(SolveSetup& setup, const std::string& scheme_name,
                         Index faults, Index ff_iterations,
                         Index parts = 8) {
  harness::SchemeFactoryConfig factory;
  factory.cr_interval_iterations = 20;
  factory.fw_cg_tolerance = 1e-10;
  const auto scheme = harness::make_scheme(scheme_name, factory, setup.x0);
  simrt::VirtualCluster cluster(simrt::paper_node(), parts,
                                scheme->replica_factor());
  auto injector =
      FaultInjector::evenly_spaced(faults, ff_iterations, parts, 5);
  RealVec x = setup.x0;
  solver::CgOptions options;
  options.tolerance = 1e-12;
  options.ff_iterations = ff_iterations;
  return resilient_solve(setup.a, cluster, setup.b, x, *scheme, injector,
                         options);
}

Index ff_iterations_of(SolveSetup& setup, Index parts = 8) {
  class NoRecovery final : public RecoveryScheme {
   public:
    std::string name() const override { return "FF"; }
    solver::HookAction recover(RecoveryContext&, Index, Index,
                               std::span<Real>) override {
      throw Error("unexpected fault");
    }
  };
  NoRecovery none;
  simrt::VirtualCluster cluster(simrt::paper_node(), parts);
  auto injector = FaultInjector::none();
  RealVec x = setup.x0;
  solver::CgOptions options;
  options.tolerance = 1e-12;
  const auto report = resilient_solve(setup.a, cluster, setup.b, x, none,
                                      injector, options);
  EXPECT_TRUE(report.cg.converged);
  return report.cg.iterations;
}

sparse::Csr test_matrix() {
  return sparse::banded_spd({192, 4, 1.0, 0.02, 0.0, 31});
}

// Property sweep: every scheme × several fault counts restores
// convergence; the result is NaN-free (the injector poisons lost blocks
// with NaN, so any scheme that reads lost data fails loudly here).
struct SchemeFaultCase {
  std::string scheme;
  Index faults;
};

class ResilientSolveTest : public ::testing::TestWithParam<SchemeFaultCase> {
};

TEST_P(ResilientSolveTest, ConvergesUnderFaults) {
  SolveSetup setup(test_matrix(), 8);
  const Index ff = ff_iterations_of(setup);
  const auto report =
      run(setup, GetParam().scheme, GetParam().faults, ff);
  EXPECT_TRUE(report.cg.converged) << GetParam().scheme;
  EXPECT_LE(report.cg.relative_residual, 1e-12);
  EXPECT_EQ(report.faults, GetParam().faults);
  EXPECT_EQ(report.recoveries, GetParam().faults);
  EXPECT_GT(report.time, 0.0);
  EXPECT_GT(report.energy, 0.0);
  EXPECT_TRUE(std::isfinite(report.cg.relative_residual));
}

std::vector<SchemeFaultCase> scheme_fault_cases() {
  std::vector<SchemeFaultCase> cases;
  for (const auto& scheme : harness::all_scheme_names()) {
    for (const Index faults : {1, 5, 10}) {
      cases.push_back({scheme, faults});
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(
    AllSchemes, ResilientSolveTest,
    ::testing::ValuesIn(scheme_fault_cases()),
    [](const ::testing::TestParamInfo<SchemeFaultCase>& param_info) {
      std::string name = param_info.param.scheme;
      for (char& c : name) {
        if (!std::isalnum(static_cast<unsigned char>(c))) {
          c = '_';
        }
      }
      return name + "_f" + std::to_string(param_info.param.faults);
    });

TEST(ResilientSolveOrderingTest, RdMatchesFaultFreeIterations) {
  SolveSetup setup(test_matrix(), 8);
  const Index ff = ff_iterations_of(setup);
  const auto rd = run(setup, "RD", 10, ff);
  EXPECT_EQ(rd.cg.iterations, ff);
}

TEST(ResilientSolveOrderingTest, InterpolationBeatsAssignment) {
  SolveSetup setup(test_matrix(), 8);
  const Index ff = ff_iterations_of(setup);
  const auto f0 = run(setup, "F0", 10, ff);
  const auto li = run(setup, "LI", 10, ff);
  const auto lsi = run(setup, "LSI", 10, ff);
  EXPECT_LT(li.cg.iterations, f0.cg.iterations);
  EXPECT_LT(lsi.cg.iterations, f0.cg.iterations);
}

TEST(ResilientSolveOrderingTest, RdDoublesEnergy) {
  SolveSetup setup(test_matrix(), 8);
  const Index ff = ff_iterations_of(setup);
  const auto rd = run(setup, "RD", 0, ff);
  // Same matrix fault-free on a single-replica cluster.
  const auto f0 = run(setup, "F0", 0, ff);
  EXPECT_NEAR(rd.energy / f0.energy, 2.0, 0.05);
  EXPECT_NEAR(rd.time / f0.time, 1.0, 0.02);
}

TEST(ResilientSolveOrderingTest, CheckpointSchemesPayForStorage) {
  SolveSetup setup(test_matrix(), 8);
  const Index ff = ff_iterations_of(setup);
  const auto crm = run(setup, "CR-M", 10, ff);
  const auto crd = run(setup, "CR-D", 10, ff);
  // Identical rollback math (same iterations), disk costs more time.
  EXPECT_EQ(crm.cg.iterations, crd.cg.iterations);
  EXPECT_GT(crd.time, crm.time);
  EXPECT_GT(crd.energy, crm.energy);
}

TEST(ResilientSolveOrderingTest, DvfsSavesEnergyAtSameIterations) {
  SolveSetup setup(test_matrix(), 8);
  const Index ff = ff_iterations_of(setup);
  const auto plain = run(setup, "LI", 10, ff);
  const auto dvfs = run(setup, "LI-DVFS", 10, ff);
  EXPECT_EQ(plain.cg.iterations, dvfs.cg.iterations);
  EXPECT_LE(dvfs.energy, plain.energy);
  EXPECT_NEAR(dvfs.time / plain.time, 1.0, 0.02);
}

TEST(ResilientSolveOrderingTest, MismatchedReplicaFactorRejected) {
  SolveSetup setup(test_matrix(), 4);
  harness::SchemeFactoryConfig factory;
  const auto dmr = harness::make_scheme("RD", factory, setup.x0);
  simrt::VirtualCluster cluster(simrt::paper_node(), 4, /*replica=*/1);
  auto injector = FaultInjector::none();
  RealVec x = setup.x0;
  EXPECT_THROW(resilient_solve(setup.a, cluster, setup.b, x, *dmr, injector,
                               solver::CgOptions{}),
               Error);
}

TEST(ResilientSolveOrderingTest, MoreFaultsMoreIterations) {
  SolveSetup setup(test_matrix(), 8);
  const Index ff = ff_iterations_of(setup);
  const auto few = run(setup, "F0", 2, ff);
  const auto many = run(setup, "F0", 10, ff);
  EXPECT_GT(many.cg.iterations, few.cg.iterations);
}

}  // namespace
}  // namespace rsls::resilience
