// Unit tests: dense Cholesky and LU factorizations.

#include <gtest/gtest.h>

#include <cmath>

#include "core/error.hpp"
#include "core/rng.hpp"
#include "la/factor.hpp"
#include "sparse/coo.hpp"
#include "sparse/csr.hpp"
#include "sparse/dense.hpp"
#include "sparse/generators.hpp"
#include "sparse/vector_ops.hpp"

namespace rsls::la {
namespace {

sparse::Dense random_spd(Index n, std::uint64_t seed) {
  return sparse::to_dense(sparse::banded_spd(
      {n, std::min<Index>(n - 1, 6), 1.0, 0.2, 0.0, seed}));
}

sparse::Dense random_general(Index n, std::uint64_t seed) {
  Rng rng(seed);
  sparse::Dense m(n, n);
  for (Index i = 0; i < n; ++i) {
    for (Index j = 0; j < n; ++j) {
      m(i, j) = rng.uniform(-1.0, 1.0);
    }
    m(i, i) += static_cast<double>(n);  // comfortably nonsingular
  }
  return m;
}

RealVec solve_and_residual(const sparse::Dense& a, const RealVec& b,
                           const std::function<void(std::span<Real>)>& solve) {
  RealVec x = b;
  solve(x);
  RealVec ax(b.size());
  a.multiply(x, ax);
  RealVec r(b.size());
  for (std::size_t i = 0; i < b.size(); ++i) {
    r[i] = b[i] - ax[i];
  }
  return r;
}

TEST(CholeskyTest, SolvesSpdSystem) {
  const sparse::Dense a = random_spd(20, 1);
  const RealVec b(20, 1.0);
  const Cholesky chol(a);
  const RealVec r = solve_and_residual(
      a, b, [&chol](std::span<Real> x) { chol.solve(x); });
  EXPECT_LT(sparse::norm2(r), 1e-10);
}

TEST(CholeskyTest, FactorReconstructsMatrix) {
  const sparse::Dense a = random_spd(10, 2);
  const Cholesky chol(a);
  const auto& l = chol.lower();
  sparse::Dense llt(10, 10);
  for (Index i = 0; i < 10; ++i) {
    for (Index j = 0; j < 10; ++j) {
      Real sum = 0.0;
      for (Index k = 0; k <= std::min(i, j); ++k) {
        sum += l(i, k) * l(j, k);
      }
      llt(i, j) = sum;
    }
  }
  EXPECT_LT(sparse::max_abs_diff(a, llt), 1e-12);
}

TEST(CholeskyTest, RejectsIndefinite) {
  sparse::Dense a(2, 2);
  a(0, 0) = 1.0;
  a(1, 1) = -1.0;
  EXPECT_THROW(Cholesky{a}, Error);
}

TEST(CholeskyTest, RejectsNonSquare) {
  const sparse::Dense a(2, 3);
  EXPECT_THROW(Cholesky{a}, Error);
}

TEST(LuTest, SolvesGeneralSystem) {
  const sparse::Dense a = random_general(25, 3);
  RealVec b(25);
  for (std::size_t i = 0; i < b.size(); ++i) {
    b[i] = static_cast<double>(i) - 12.0;
  }
  const Lu lu(a);
  const RealVec r =
      solve_and_residual(a, b, [&lu](std::span<Real> x) { lu.solve(x); });
  EXPECT_LT(sparse::norm2(r), 1e-9);
}

TEST(LuTest, HandlesPivotingRequirement) {
  // Zero leading pivot forces a row swap.
  sparse::Dense a(2, 2);
  a(0, 0) = 0.0;
  a(0, 1) = 1.0;
  a(1, 0) = 1.0;
  a(1, 1) = 0.0;
  const Lu lu(a);
  RealVec x = {2.0, 3.0};  // b
  lu.solve(x);
  EXPECT_DOUBLE_EQ(x[0], 3.0);
  EXPECT_DOUBLE_EQ(x[1], 2.0);
}

TEST(LuTest, RejectsSingular) {
  sparse::Dense a(2, 2);
  a(0, 0) = 1.0;
  a(0, 1) = 2.0;
  a(1, 0) = 2.0;
  a(1, 1) = 4.0;
  EXPECT_THROW(Lu{a}, Error);
}

TEST(LuTest, PivotRatioReasonable) {
  const Lu lu(random_general(10, 4));
  EXPECT_GE(lu.pivot_ratio(), 1.0);
  EXPECT_LT(lu.pivot_ratio(), 1e6);
}

TEST(LuTest, MatchesCholeskyOnSpd) {
  const sparse::Dense a = random_spd(15, 5);
  const RealVec b(15, 2.0);
  RealVec x_lu = b, x_chol = b;
  Lu(a).solve(x_lu);
  Cholesky(a).solve(x_chol);
  for (std::size_t i = 0; i < b.size(); ++i) {
    EXPECT_NEAR(x_lu[i], x_chol[i], 1e-9);
  }
}

TEST(TriangularTest, LowerSolve) {
  sparse::Dense l(2, 2);
  l(0, 0) = 2.0;
  l(1, 0) = 1.0;
  l(1, 1) = 4.0;
  RealVec x = {4.0, 10.0};
  solve_lower(l, x, /*unit_diag=*/false);
  EXPECT_DOUBLE_EQ(x[0], 2.0);
  EXPECT_DOUBLE_EQ(x[1], 2.0);
}

TEST(TriangularTest, LowerSolveUnitDiag) {
  sparse::Dense l(2, 2);
  l(0, 0) = 99.0;  // ignored with unit diagonal
  l(1, 0) = 3.0;
  l(1, 1) = 99.0;
  RealVec x = {1.0, 5.0};
  solve_lower(l, x, /*unit_diag=*/true);
  EXPECT_DOUBLE_EQ(x[0], 1.0);
  EXPECT_DOUBLE_EQ(x[1], 2.0);
}

TEST(TriangularTest, UpperSolve) {
  sparse::Dense u(2, 2);
  u(0, 0) = 2.0;
  u(0, 1) = 1.0;
  u(1, 1) = 4.0;
  RealVec x = {5.0, 8.0};
  solve_upper(u, x);
  EXPECT_DOUBLE_EQ(x[1], 2.0);
  EXPECT_DOUBLE_EQ(x[0], 1.5);
}

TEST(TriangularTest, LowerTransposeSolve) {
  sparse::Dense l(2, 2);
  l(0, 0) = 2.0;
  l(1, 0) = 1.0;
  l(1, 1) = 4.0;
  // Solve Lᵀ x = b where Lᵀ = [2 1; 0 4].
  RealVec x = {5.0, 8.0};
  solve_lower_transpose(l, x);
  EXPECT_DOUBLE_EQ(x[1], 2.0);
  EXPECT_DOUBLE_EQ(x[0], 1.5);
}

TEST(IncompleteCholesky0Test, ExactWhereSparsityAllowsNoFill) {
  // A tridiagonal SPD matrix suffers zero fill-in, so IC(0) IS the exact
  // Cholesky factorization: its solve must match the dense solve.
  const sparse::Csr a = sparse::laplacian_1d(24);
  const IncompleteCholesky0 ic(a);
  EXPECT_EQ(ic.size(), 24);
  const sparse::Dense dense = sparse::to_dense(a);
  const Cholesky chol(dense);
  RealVec r(24);
  for (std::size_t i = 0; i < r.size(); ++i) {
    r[i] = 1.0 + 0.1 * static_cast<double>(i);
  }
  RealVec z_ic(24);
  ic.solve(r, z_ic);
  RealVec z_dense = r;
  chol.solve(z_dense);
  for (std::size_t i = 0; i < r.size(); ++i) {
    EXPECT_NEAR(z_ic[i], z_dense[i], 1e-10);
  }
}

TEST(IncompleteCholesky0Test, ApproximatesInverseOnBandedSpd) {
  // With dropped fill the factorization is inexact, but on a diagonally
  // dominant matrix z = (L Lᵀ)⁻¹ r must still beat the identity as an
  // approximation of A⁻¹ r: ‖r − A z‖ ≪ ‖r‖.
  const sparse::Csr a = sparse::banded_spd({64, 5, 1.0, 0.3, 0.0, 11});
  const IncompleteCholesky0 ic(a);
  RealVec r(64, 1.0);
  RealVec z(64);
  ic.solve(r, z);
  RealVec az(64);
  sparse::spmv(a, z, az);
  RealVec residual(64);
  for (std::size_t i = 0; i < residual.size(); ++i) {
    residual[i] = r[i] - az[i];
  }
  EXPECT_LT(sparse::norm2(residual), 0.5 * sparse::norm2(r));
}

TEST(IncompleteCholesky0Test, CountsFactorAndSolveFlops) {
  const sparse::Csr a = sparse::laplacian_1d(16);
  const IncompleteCholesky0 ic(a);
  EXPECT_GT(ic.nnz(), 0);
  EXPECT_GT(ic.factor_flops(), 0.0);
  EXPECT_DOUBLE_EQ(ic.solve_flops(), 4.0 * static_cast<double>(ic.nnz()));
}

TEST(IncompleteCholesky0Test, ThrowsOnNonPositivePivot) {
  // A symmetric indefinite matrix (eigenvalues 3 and −1): the second
  // pivot goes non-positive and the factorization must break down loudly.
  sparse::CooBuilder builder(2, 2);
  builder.add(0, 0, 1.0);
  builder.add(1, 1, 1.0);
  builder.add_symmetric(0, 1, 2.0);
  EXPECT_THROW(IncompleteCholesky0(builder.to_csr()), Error);
}

}  // namespace
}  // namespace rsls::la
