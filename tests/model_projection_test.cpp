// Unit tests: communication scaling table and the §6 projection engine.

#include <gtest/gtest.h>

#include <cmath>

#include "core/error.hpp"
#include "model/comm_scaling.hpp"
#include "model/projection.hpp"

namespace rsls::model {
namespace {

TEST(CommScalingTest, InterpolatesAtTablePoints) {
  const CommScalingTable table;
  EXPECT_NEAR(table.spmv_comm_seconds(1024), 280e-6, 1e-9);
  EXPECT_NEAR(table.spmv_comm_seconds(65536), 620e-6, 1e-9);
}

TEST(CommScalingTest, MonotoneBetweenPoints) {
  const CommScalingTable table;
  Seconds prev = 0.0;
  for (Index p = 1024; p <= 65536; p *= 2) {
    const Seconds t = table.spmv_comm_seconds(p);
    EXPECT_GT(t, prev);
    prev = t;
  }
}

TEST(CommScalingTest, ExtrapolatesBeyondTable) {
  const CommScalingTable table;
  EXPECT_GT(table.spmv_comm_seconds(1048576),
            table.spmv_comm_seconds(65536));
}

TEST(CommScalingTest, FlooredBelowTable) {
  const CommScalingTable table;
  EXPECT_GE(table.spmv_comm_seconds(2), 0.25 * 280e-6);
}

TEST(CommScalingTest, AllreduceLogGrowth) {
  EXPECT_DOUBLE_EQ(CommScalingTable::allreduce_seconds(1024, 1e-6), 10e-6);
  EXPECT_DOUBLE_EQ(CommScalingTable::allreduce_seconds(2, 1e-6), 1e-6);
}

TEST(CommScalingTest, IterationOverheadCombines) {
  const CommScalingTable table;
  const Index p = 4096;
  EXPECT_NEAR(table.cg_iteration_overhead(p),
              table.spmv_comm_seconds(p) +
                  2.0 * CommScalingTable::allreduce_seconds(p),
              1e-12);
}

TEST(CommScalingTest, CustomPointsValidated) {
  EXPECT_THROW(CommScalingTable({{100, 1e-3}}), Error);  // too few
  EXPECT_THROW(CommScalingTable({{100, 1e-3}, {50, 2e-3}}), Error);
  EXPECT_THROW(CommScalingTable({{100, 0.0}, {200, 1e-3}}), Error);
}

TEST(ProjectionTest, DefaultCountsAreSpecified) {
  const auto counts = default_process_counts();
  ASSERT_EQ(counts.size(), 6u);
  EXPECT_EQ(counts.front(), 1024);
  EXPECT_EQ(counts.back(), 1048576);
}

TEST(ProjectionTest, MtbfDecreasesLinearly) {
  const auto points = project(ProjectionInputs{}, {1000, 2000});
  ASSERT_EQ(points.size(), 2u);
  EXPECT_NEAR(points[0].system_mtbf / points[1].system_mtbf, 2.0, 1e-9);
}

TEST(ProjectionTest, TbaseGrowsWithOverhead) {
  const auto points = project(ProjectionInputs{}, {1024, 1048576});
  EXPECT_GT(points[1].t_base, points[0].t_base);
  EXPECT_GT(points[0].t_base, ProjectionInputs{}.t_solve);
}

TEST(ProjectionTest, PaperShapes) {
  const auto points = project(ProjectionInputs{}, default_process_counts());
  const auto& first = points.front();
  const auto& last = points.back();
  // RD flat at the fault-free time.
  EXPECT_DOUBLE_EQ(first.rd.t_res_ratio, 0.0);
  EXPECT_DOUBLE_EQ(last.rd.t_res_ratio, 0.0);
  EXPECT_DOUBLE_EQ(last.rd.power_ratio, 2.0);
  // FW grows.
  EXPECT_GT(last.fw.t_res_ratio, first.fw.t_res_ratio);
  // CR-D grows fastest (possibly to a halt).
  const double crd_growth = last.cr_disk.halted
                                ? std::numeric_limits<double>::infinity()
                                : last.cr_disk.t_res_ratio -
                                      first.cr_disk.t_res_ratio;
  EXPECT_GT(crd_growth, last.fw.t_res_ratio - first.fw.t_res_ratio);
  // CR-M stays the cheapest at exascale.
  EXPECT_LT(last.cr_memory.t_res_ratio, last.fw.t_res_ratio);
  EXPECT_FALSE(last.cr_memory.halted);
  // ESR grows slowly (log-depth encode/decode) and never halts: above
  // RD's zero time overhead but below FW, and far below RD's 2× energy.
  EXPECT_GT(last.esr.t_res_ratio, first.esr.t_res_ratio);
  EXPECT_GT(last.esr.t_res_ratio, last.rd.t_res_ratio);
  EXPECT_LT(last.esr.t_res_ratio, last.fw.t_res_ratio);
  EXPECT_LT(last.esr.e_res_ratio, last.rd.e_res_ratio);
  EXPECT_FALSE(last.esr.halted);
}

TEST(ProjectionTest, CrdPowerDropsWithScale) {
  ProjectionInputs inputs;
  const auto points = project(inputs, {1024, 262144});
  EXPECT_LE(points[1].cr_disk.power_ratio, points[0].cr_disk.power_ratio);
}

TEST(ProjectionTest, HigherPerProcessMtbfHelps) {
  ProjectionInputs fragile;
  fragile.per_process_mtbf = 1000.0 * 3600.0;
  ProjectionInputs robust;
  robust.per_process_mtbf = 100000.0 * 3600.0;
  const auto fragile_points = project(fragile, {65536});
  const auto robust_points = project(robust, {65536});
  EXPECT_GT(fragile_points[0].fw.t_res_ratio,
            robust_points[0].fw.t_res_ratio);
}

TEST(ProjectionTest, RejectsBadInputs) {
  ProjectionInputs inputs;
  inputs.t_solve = 0.0;
  EXPECT_THROW(project(inputs, {1024}), Error);
  inputs = ProjectionInputs{};
  EXPECT_THROW(project(inputs, {0}), Error);
}

}  // namespace
}  // namespace rsls::model
