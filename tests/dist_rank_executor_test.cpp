// RankExecutor: the rank-parallel execution seam (DESIGN.md §17).
// Coverage and ordering properties of the fan-out itself, plus the
// load-bearing guarantee: harness runs are bitwise identical — numerics,
// virtual time, energy — at any fan-out width, across the scheme roster
// and kernel variants.

#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "dist/dist_matrix.hpp"
#include "dist/dist_ops.hpp"
#include "dist/partition.hpp"
#include "dist/rank_executor.hpp"
#include "harness/experiment.hpp"
#include "harness/scheme_factory.hpp"
#include "simrt/cluster.hpp"
#include "simrt/machine.hpp"
#include "sparse/generators.hpp"

namespace rsls {
namespace {

/// Pin the executor width for one scope — and zero the fan-out grain
/// gate so the small matrices these tests use actually reach the pool —
/// restoring env-driven sizing (RSLS_JOBS) and the default grain on
/// exit so tests do not leak their overrides.
class ScopedJobs {
 public:
  explicit ScopedJobs(Index jobs) {
    dist::RankExecutor::instance().set_jobs(jobs);
    dist::RankExecutor::instance().set_min_work(0);
  }
  ~ScopedJobs() {
    dist::RankExecutor::instance().set_jobs(0);
    dist::RankExecutor::instance().set_min_work(-1);
  }
};

TEST(RankExecutorTest, SetJobsOverridesWidth) {
  auto& exec = dist::RankExecutor::instance();
  exec.set_jobs(4);
  EXPECT_EQ(exec.jobs(), 4);
  exec.set_jobs(1);
  EXPECT_EQ(exec.jobs(), 1);
  exec.set_jobs(0);  // back to RSLS_JOBS
}

TEST(RankExecutorTest, ForEachRankCoversEveryRankOnce) {
  ScopedJobs jobs(3);
  const Index parts = 7;  // more ranks than workers, uneven split
  std::vector<std::atomic<int>> hits(static_cast<std::size_t>(parts));
  dist::RankExecutor::instance().for_each_rank(parts, [&](Index rank) {
    ASSERT_GE(rank, 0);
    ASSERT_LT(rank, parts);
    hits[static_cast<std::size_t>(rank)].fetch_add(1);
  });
  for (const auto& h : hits) {
    EXPECT_EQ(h.load(), 1);
  }
}

TEST(RankExecutorTest, ForEachChunkCoversRangeWithLastChunkSmaller) {
  ScopedJobs jobs(4);
  const Index total = 10;  // 4 workers → chunks of 3,3,2,2
  std::vector<std::atomic<int>> hits(static_cast<std::size_t>(total));
  std::atomic<Index> max_chunk{0};
  std::atomic<Index> min_chunk{total};
  dist::RankExecutor::instance().for_each_chunk(
      total, [&](Index begin, Index end) {
        ASSERT_LT(begin, end);
        const Index size = end - begin;
        Index seen = max_chunk.load();
        while (size > seen && !max_chunk.compare_exchange_weak(seen, size)) {
        }
        seen = min_chunk.load();
        while (size < seen && !min_chunk.compare_exchange_weak(seen, size)) {
        }
        for (Index i = begin; i < end; ++i) {
          hits[static_cast<std::size_t>(i)].fetch_add(1);
        }
      });
  for (const auto& h : hits) {
    EXPECT_EQ(h.load(), 1);
  }
  // 10 slots over 4 groups cannot split evenly: the trailing chunks
  // must be smaller than the leading ones.
  EXPECT_GT(max_chunk.load(), min_chunk.load());
}

TEST(RankExecutorTest, NestedFanOutRunsInlineWithoutDeadlock) {
  ScopedJobs jobs(4);
  const Index parts = 4;
  std::vector<std::atomic<int>> hits(static_cast<std::size_t>(parts * parts));
  dist::RankExecutor::instance().for_each_rank(parts, [&](Index outer) {
    dist::RankExecutor::instance().for_each_rank(parts, [&](Index inner) {
      hits[static_cast<std::size_t>(outer * parts + inner)].fetch_add(1);
    });
  });
  for (const auto& h : hits) {
    EXPECT_EQ(h.load(), 1);
  }
}

// The grain gate: work hints below min_work() run inline on the calling
// thread (pool wake latency dwarfs small arithmetic); -1 and hints at or
// above the threshold fan out. ScopedJobs zeroes the gate, so this test
// manages the override itself.
TEST(RankExecutorTest, MinWorkGateRunsSmallCallsInline) {
  auto& exec = dist::RankExecutor::instance();
  exec.set_jobs(4);
  exec.set_min_work(-1);  // built-in default
  EXPECT_GT(exec.min_work(), 0);
  exec.set_min_work(100);
  EXPECT_EQ(exec.min_work(), 100);

  const auto ran_inline = [&exec](Index work) {
    const std::thread::id caller = std::this_thread::get_id();
    std::atomic<bool> all_on_caller{true};
    exec.for_each_rank(
        8,
        [&](Index) {
          if (std::this_thread::get_id() != caller) {
            all_on_caller.store(false);
          }
        },
        work);
    return all_on_caller.load();
  };
  EXPECT_TRUE(ran_inline(99));    // below the gate → inline
  EXPECT_FALSE(ran_inline(100));  // at the gate → fans out
  EXPECT_FALSE(ran_inline(-1));   // unknown work → always fans out

  exec.set_min_work(0);  // 0 forces every call parallel
  EXPECT_FALSE(ran_inline(1));

  exec.set_min_work(-1);
  exec.set_jobs(0);
}

TEST(RankExecutorTest, BodyExceptionPropagatesToCaller) {
  ScopedJobs jobs(4);
  EXPECT_THROW(
      dist::RankExecutor::instance().for_each_rank(6,
                                                   [&](Index rank) {
                                                     if (rank == 5) {
                                                       throw std::runtime_error(
                                                           "rank 5 failed");
                                                     }
                                                   }),
      std::runtime_error);
  // The executor survives a throwing fan-out.
  std::atomic<int> count{0};
  dist::RankExecutor::instance().for_each_rank(
      3, [&](Index) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 3);
}

// Uneven block rows — the last rank owns fewer rows than the rest —
// through the real dist_spmv consumer: serial and parallel widths must
// agree bitwise with each other and with the plain global kernel.
TEST(RankExecutorTest, DistSpmvBitwiseAtAnyWidthWithUnevenLastRank) {
  const sparse::Csr a = sparse::banded_spd({19, 3, 1.0, 0.05, 0.0, 21});
  const dist::DistMatrix dist_a(a, 4);  // blocks 5,5,5,4
  ASSERT_LT(dist_a.partition().block_rows(3),
            dist_a.partition().block_rows(0));
  RealVec x(19);
  for (std::size_t i = 0; i < x.size(); ++i) {
    x[i] = 0.1 * static_cast<double>(i) - 0.7;
  }
  RealVec y_global(19, 0.0);
  sparse::spmv(a, x, y_global);

  RealVec y_serial(19, 0.0);
  {
    ScopedJobs jobs(1);
    simrt::VirtualCluster cluster(simrt::paper_node(), 4);
    dist::dist_spmv(dist_a, cluster, x, y_serial, power::PhaseTag::kSolve);
  }
  RealVec y_parallel(19, 0.0);
  {
    ScopedJobs jobs(4);
    simrt::VirtualCluster cluster(simrt::paper_node(), 4);
    dist::dist_spmv(dist_a, cluster, x, y_parallel, power::PhaseTag::kSolve);
  }
  for (std::size_t i = 0; i < y_global.size(); ++i) {
    EXPECT_EQ(y_serial[i], y_global[i]) << i;
    EXPECT_EQ(y_parallel[i], y_global[i]) << i;
  }
}

harness::SchemeRun run_scheme_once(const std::string& scheme,
                                   const std::string& spmv_kernel) {
  const sparse::Csr a = sparse::banded_spd({192, 4, 1.0, 0.02, 1.0, 77});
  const auto workload = harness::Workload::create(a, 8);
  harness::ExperimentConfig config;
  config.processes = 8;
  config.faults = 6;
  config.scheme.cr_interval_iterations = 25;
  config.spmv_kernel = spmv_kernel;
  const auto ff = harness::run_fault_free(workload, config);
  return harness::run_scheme(workload, scheme, config, ff);
}

// The tentpole determinism gate: every scheme in the roster must
// produce the same numerics, virtual time, and energy — bitwise — at
// fan-out widths 1 and 4. Charges stay on the calling thread in rank
// order, so any divergence here means a parallel body leaked
// schedule-dependence into the charge stream.
TEST(RankExecutorDeterminismTest, SchemeRosterBitwiseAcrossWidths) {
  for (const auto& scheme : harness::all_scheme_names()) {
    SCOPED_TRACE(scheme);
    const auto serial = [&] {
      ScopedJobs jobs(1);
      return run_scheme_once(scheme, "csr-scalar");
    }();
    const auto parallel = [&] {
      ScopedJobs jobs(4);
      return run_scheme_once(scheme, "csr-scalar");
    }();
    EXPECT_EQ(serial.report.cg.iterations, parallel.report.cg.iterations);
    EXPECT_EQ(serial.report.cg.relative_residual,
              parallel.report.cg.relative_residual);  // bitwise
    EXPECT_EQ(serial.report.time, parallel.report.time);
    EXPECT_EQ(serial.report.energy, parallel.report.energy);
    EXPECT_EQ(serial.report.faults, parallel.report.faults);
    EXPECT_EQ(serial.report.recoveries, parallel.report.recoveries);
  }
}

// The same gate along the kernel axis: a non-default SpMV kernel keeps
// the width-independence property (and sell-c-sigma additionally keeps
// the csr-scalar numbers themselves, by its bitwise-equality design).
TEST(RankExecutorDeterminismTest, KernelVariantsBitwiseAcrossWidths) {
  const auto scalar_serial = run_scheme_once("LI", "csr-scalar");
  for (const std::string kernel : {"csr-simd", "sell-c-sigma"}) {
    SCOPED_TRACE(kernel);
    const auto serial = [&] {
      ScopedJobs jobs(1);
      return run_scheme_once("LI", kernel);
    }();
    const auto parallel = [&] {
      ScopedJobs jobs(4);
      return run_scheme_once("LI", kernel);
    }();
    EXPECT_EQ(serial.report.cg.iterations, parallel.report.cg.iterations);
    EXPECT_EQ(serial.report.cg.relative_residual,
              parallel.report.cg.relative_residual);  // bitwise
    EXPECT_EQ(serial.report.time, parallel.report.time);
    EXPECT_EQ(serial.report.energy, parallel.report.energy);
    if (kernel == "sell-c-sigma") {
      EXPECT_EQ(serial.report.cg.iterations,
                scalar_serial.report.cg.iterations);
      EXPECT_EQ(serial.report.cg.relative_residual,
                scalar_serial.report.cg.relative_residual);  // bitwise
      EXPECT_EQ(serial.report.energy, scalar_serial.report.energy);
    }
  }
}

}  // namespace
}  // namespace rsls
