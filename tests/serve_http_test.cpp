// HTTP transport layer: request parsing, response framing (complete and
// chunked), error mapping, and server lifecycle over real loopback
// sockets.

#include "serve/http.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "core/error.hpp"
#include "serve/client.hpp"

namespace rsls::serve {
namespace {

TEST(ServeHttp, ServesACompleteRequestResponseRoundTrip) {
  HttpServer server(0, [](const HttpRequest& request,
                          HttpResponseWriter& writer) {
    EXPECT_EQ(request.method, "POST");
    EXPECT_EQ(request.path, "/echo");
    EXPECT_EQ(request.query, "x=1");
    EXPECT_EQ(request.header("content-type"), "application/json");
    EXPECT_EQ(request.header("Content-Type"), "application/json");  // any case
    writer.respond(200, "application/json", request.body);
  });
  std::thread accept_thread([&server] { server.serve_forever(); });

  const Client client(server.port());
  const ClientResponse response =
      client.request("POST", "/echo?x=1", "{\"payload\":42}");
  EXPECT_EQ(response.status, 200);
  EXPECT_EQ(response.body, "{\"payload\":42}");

  server.stop();
  accept_thread.join();
}

TEST(ServeHttp, DecodesChunkedResponses) {
  HttpServer server(0, [](const HttpRequest&, HttpResponseWriter& writer) {
    ASSERT_TRUE(writer.begin_chunked(200, "application/x-ndjson"));
    writer.send_chunk("line one\n");
    writer.send_chunk("line two\n");
    writer.end_chunked();
  });
  std::thread accept_thread([&server] { server.serve_forever(); });

  const Client client(server.port());
  const ClientResponse response = client.request("GET", "/stream");
  EXPECT_EQ(response.status, 200);
  EXPECT_EQ(response.body, "line one\nline two\n");

  server.stop();
  accept_thread.join();
}

TEST(ServeHttp, HandlerExceptionBecomesInternalError) {
  HttpServer server(0, [](const HttpRequest&, HttpResponseWriter&) {
    throw Error("boom");
  });
  std::thread accept_thread([&server] { server.serve_forever(); });

  const Client client(server.port());
  const ClientResponse response = client.request("GET", "/");
  EXPECT_EQ(response.status, 500);
  EXPECT_NE(response.body.find("boom"), std::string::npos);

  server.stop();
  accept_thread.join();
}

TEST(ServeHttp, HandlesManyConcurrentConnections) {
  HttpServer server(0, [](const HttpRequest& request,
                          HttpResponseWriter& writer) {
    writer.respond(200, "text/plain", request.body);
  });
  std::thread accept_thread([&server] { server.serve_forever(); });

  constexpr int kClients = 32;
  std::vector<std::thread> threads;
  std::vector<int> statuses(kClients, 0);
  for (int i = 0; i < kClients; ++i) {
    threads.emplace_back([&server, &statuses, i] {
      const Client client(server.port());
      const ClientResponse response =
          client.request("POST", "/", "client " + std::to_string(i));
      statuses[static_cast<std::size_t>(i)] =
          response.body == "client " + std::to_string(i) ? response.status : 0;
    });
  }
  for (std::thread& t : threads) {
    t.join();
  }
  for (const int status : statuses) {
    EXPECT_EQ(status, 200);
  }

  server.stop();
  accept_thread.join();
}

TEST(ServeHttp, StopUnblocksServeForever) {
  HttpServer server(0, [](const HttpRequest&, HttpResponseWriter& writer) {
    writer.respond(200, "text/plain", "ok");
  });
  std::thread accept_thread([&server] { server.serve_forever(); });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  server.stop();
  accept_thread.join();  // would hang forever if stop didn't wake accept
  SUCCEED();
}

TEST(ServeHttp, RejectsBindOnPortInUse) {
  HttpServer first(0, [](const HttpRequest&, HttpResponseWriter& writer) {
    writer.respond(200, "text/plain", "ok");
  });
  EXPECT_THROW(
      HttpServer(first.port(),
                 [](const HttpRequest&, HttpResponseWriter& writer) {
                   writer.respond(200, "text/plain", "ok");
                 }),
      Error);
}

}  // namespace
}  // namespace rsls::serve
