// Unit tests: command-line option parser.

#include <gtest/gtest.h>

#include "core/error.hpp"
#include "core/options.hpp"

namespace rsls {
namespace {

Options make(std::vector<std::string> tokens) { return Options(tokens); }

TEST(OptionsTest, ParsesKeyValue) {
  const auto opts = make({"--processes=64", "--name=foo"});
  EXPECT_EQ(opts.get_index("processes", 0), 64);
  EXPECT_EQ(opts.get_string("name", ""), "foo");
}

TEST(OptionsTest, BareFlagIsTrue) {
  const auto opts = make({"--quick"});
  EXPECT_TRUE(opts.get_bool("quick", false));
}

TEST(OptionsTest, FallbacksUsedWhenMissing) {
  const auto opts = make({});
  EXPECT_EQ(opts.get_index("missing", 7), 7);
  EXPECT_DOUBLE_EQ(opts.get_double("missing", 2.5), 2.5);
  EXPECT_EQ(opts.get_string("missing", "dflt"), "dflt");
  EXPECT_FALSE(opts.get_bool("missing", false));
}

TEST(OptionsTest, DoubleParsing) {
  const auto opts = make({"--tol=1e-10"});
  EXPECT_DOUBLE_EQ(opts.get_double("tol", 0.0), 1e-10);
}

TEST(OptionsTest, BoolVariants) {
  EXPECT_TRUE(make({"--f=true"}).get_bool("f", false));
  EXPECT_TRUE(make({"--f=1"}).get_bool("f", false));
  EXPECT_TRUE(make({"--f=yes"}).get_bool("f", false));
  EXPECT_FALSE(make({"--f=false"}).get_bool("f", true));
  EXPECT_FALSE(make({"--f=0"}).get_bool("f", true));
  EXPECT_FALSE(make({"--f=off"}).get_bool("f", true));
}

TEST(OptionsTest, MalformedTokensThrow) {
  EXPECT_THROW(make({"processes=64"}), Error);  // missing --
  EXPECT_THROW(make({"--"}), Error);            // empty body
  EXPECT_THROW(make({"--=5"}), Error);          // empty key
}

TEST(OptionsTest, BadNumbersThrow) {
  EXPECT_THROW(make({"--n=abc"}).get_index("n", 0), Error);
  EXPECT_THROW(make({"--x=1.5z"}).get_double("x", 0.0), Error);
  EXPECT_THROW(make({"--b=maybe"}).get_bool("b", false), Error);
}

TEST(OptionsTest, UnusedKeysReported) {
  const auto opts = make({"--used=1", "--typo=2"});
  EXPECT_EQ(opts.get_index("used", 0), 1);
  const auto unused = opts.unused_keys();
  ASSERT_EQ(unused.size(), 1u);
  EXPECT_EQ(unused[0], "typo");
}

TEST(OptionsTest, HasMarksUsed) {
  const auto opts = make({"--present"});
  EXPECT_TRUE(opts.has("present"));
  EXPECT_FALSE(opts.has("absent"));
  EXPECT_TRUE(opts.unused_keys().empty());
}

TEST(OptionsTest, ArgcArgvConstructor) {
  const char* argv[] = {"prog", "--a=1", "--b=two"};
  const Options opts(3, argv);
  EXPECT_EQ(opts.get_index("a", 0), 1);
  EXPECT_EQ(opts.get_string("b", ""), "two");
}

TEST(OptionsTest, LastValueWins) {
  const auto opts = make({"--k=1", "--k=2"});
  EXPECT_EQ(opts.get_index("k", 0), 2);
}

}  // namespace
}  // namespace rsls
