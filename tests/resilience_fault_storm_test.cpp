// Stress test: a bursty Weibull fault storm over correlated failure
// domains, with spare promotion and a fallible retry budget, must never
// crash, corrupt memory (this binary runs under ASan/UBSan in CI), or
// lose count coherence — and must stay bit-for-bit deterministic.

#include <gtest/gtest.h>

#include <cmath>

#include "harness/experiment.hpp"
#include "resilience/recovery_runtime.hpp"
#include "resilience/resilient_solve.hpp"
#include "sparse/generators.hpp"

namespace rsls {
namespace {

using resilience::SolveStatus;

harness::ExperimentConfig storm_config() {
  harness::ExperimentConfig config;
  config.processes = 12;
  config.faults = 4;  // sets the effective MTBF of the Weibull arrivals
  config.weibull_shape = 0.7;  // infant mortality: front-loaded failures
  config.fault_burstiness = 0.9;
  config.burst_compression = 0.05;
  config.fault_domains = 3;  // synthetic 3-rank PSU groups
  config.recovery.policy = resilience::RecoveryPolicy::kSpare;
  config.recovery.spare_ranks = 2;  // runs dry fast, exercising fallback
  config.recovery.max_retries = 2;
  return config;
}

harness::SchemeRun run_storm(const std::string& scheme, Index parity) {
  const sparse::Csr a = sparse::banded_spd({180, 4, 1.0, 0.02, 1.0, 91});
  const auto workload = harness::Workload::create(a, 12);
  harness::ExperimentConfig config = storm_config();
  config.scheme.abft_parity_blocks = parity;
  const auto ff = harness::run_fault_free(workload, config);
  return harness::run_scheme(workload, scheme, config, ff);
}

class FaultStormTest : public ::testing::TestWithParam<std::string> {};

TEST_P(FaultStormTest, StormStaysCoherent) {
  const auto run = run_storm(GetParam(), 4);
  const auto& r = run.report;
  // The run may converge, stall, or be declared failed — a storm is
  // allowed to win — but the outcome must be structured and the
  // counters coherent.
  EXPECT_TRUE(r.status == SolveStatus::kConverged ||
              r.status == SolveStatus::kMaxIterations ||
              r.status == SolveStatus::kDeclaredFailure);
  EXPECT_TRUE(std::isfinite(r.true_relative_residual));
  EXPECT_TRUE(std::isfinite(r.energy));
  EXPECT_GT(r.time, 0.0);
  // Every event is a whole-domain kill of 3 ranks, and each one is
  // recorded in the realized schedule.
  EXPECT_EQ(r.faults, 3 * r.domain_faults);
  EXPECT_EQ(static_cast<Index>(r.fault_schedule.size()), r.domain_faults);
  for (const auto& record : r.fault_schedule) {
    EXPECT_EQ(record.ranks.size(), 3u);
    EXPECT_TRUE(record.domain_event);
  }
  // The 2-spare pool cannot cover a 3-rank domain kill: any promotion
  // activity implies dry-pool shrink fallbacks. (A drain-cap abort may
  // record one final event without dispatching machine recovery for it,
  // so the identity is exact only for non-aborted runs.)
  EXPECT_LE(r.spares_consumed, 2);
  EXPECT_EQ(r.shrink_events, r.spare_pool_dry);
  if (r.domain_faults > 0) {
    EXPECT_GE(r.recovery_attempts, 1);
    if (r.status != SolveStatus::kDeclaredFailure) {
      EXPECT_EQ(r.spare_pool_dry, r.faults - r.spares_consumed);
    } else {
      EXPECT_LE(r.spare_pool_dry + r.spares_consumed, r.faults);
    }
  }
}

TEST_P(FaultStormTest, StormIsBitwiseDeterministic) {
  const auto first = run_storm(GetParam(), 4);
  const auto second = run_storm(GetParam(), 4);
  EXPECT_EQ(first.report.cg.iterations, second.report.cg.iterations);
  EXPECT_EQ(first.report.cg.relative_residual,
            second.report.cg.relative_residual);  // bitwise
  EXPECT_EQ(first.report.time, second.report.time);
  EXPECT_EQ(first.report.energy, second.report.energy);
  EXPECT_EQ(first.report.faults, second.report.faults);
  EXPECT_EQ(first.report.domain_faults, second.report.domain_faults);
  EXPECT_EQ(first.report.recovery_attempts, second.report.recovery_attempts);
  EXPECT_EQ(first.report.recoveries_struck, second.report.recoveries_struck);
  ASSERT_EQ(first.report.fault_schedule.size(),
            second.report.fault_schedule.size());
  for (std::size_t i = 0; i < first.report.fault_schedule.size(); ++i) {
    EXPECT_EQ(first.report.fault_schedule[i].time,
              second.report.fault_schedule[i].time);  // bitwise
    EXPECT_EQ(first.report.fault_schedule[i].ranks,
              second.report.fault_schedule[i].ranks);
  }
}

INSTANTIATE_TEST_SUITE_P(Schemes, FaultStormTest,
                         ::testing::Values("ESR", "CR-M"),
                         [](const auto& info) {
                           std::string name = info.param;
                           for (char& c : name) {
                             if (!std::isalnum(
                                     static_cast<unsigned char>(c))) {
                               c = '_';
                             }
                           }
                           return name;
                         });

}  // namespace
}  // namespace rsls
