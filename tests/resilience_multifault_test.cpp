// Unit + integration tests: multi-rank fault events (the paper's LNF
// class — link-and-node failures take out several processes at once).

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "core/error.hpp"
#include "harness/experiment.hpp"
#include "harness/scheme_factory.hpp"
#include "resilience/checkpoint.hpp"
#include "resilience/forward.hpp"
#include "resilience/resilient_solve.hpp"
#include "sparse/generators.hpp"
#include "sparse/roster.hpp"

namespace rsls::resilience {
namespace {

struct LnfSetup {
  dist::DistMatrix a;
  RealVec b;
  RealVec x0;

  explicit LnfSetup(Index n = 128, Index parts = 8)
      : a(sparse::banded_spd({n, 3, 1.0, 0.05, 0.0, 21}), parts),
        b(sparse::make_rhs(a.global())),
        x0(static_cast<std::size_t>(n), 0.0) {}
};

TEST(MultiFaultInjectorTest, DistinctRanksPerEvent) {
  auto injector = FaultInjector::evenly_spaced_multi(5, 500, 3, 8, 7);
  Index events = 0;
  for (Index k = 1; k <= 500; ++k) {
    const IndexVec failed = injector.check_multi(k, 0.0);
    if (!failed.empty()) {
      ++events;
      EXPECT_EQ(failed.size(), 3u);
      std::set<Index> distinct(failed.begin(), failed.end());
      EXPECT_EQ(distinct.size(), 3u);
      for (const Index r : failed) {
        EXPECT_GE(r, 0);
        EXPECT_LT(r, 8);
      }
    }
  }
  EXPECT_EQ(events, 5);
  EXPECT_EQ(injector.faults_injected(), 15);  // 5 events × 3 ranks
}

TEST(MultiFaultInjectorTest, SingleRankModeUnchanged) {
  auto injector = FaultInjector::evenly_spaced(4, 100, 8, 7);
  for (Index k = 1; k <= 100; ++k) {
    const IndexVec failed = injector.check_multi(k, 0.0);
    EXPECT_LE(failed.size(), 1u);
  }
  EXPECT_EQ(injector.faults_injected(), 4);
}

TEST(MultiFaultInjectorTest, ValidatesRanksPerFault) {
  EXPECT_THROW(FaultInjector::evenly_spaced_multi(1, 10, 0, 8, 1), Error);
  EXPECT_THROW(FaultInjector::evenly_spaced_multi(1, 10, 9, 8, 1), Error);
}

TEST(MultiFaultRecoveryTest, ForwardRecoveryHandlesSimultaneousLoss) {
  // Two blocks lost at once: LI reconstructing block 2 must not read
  // block 5's NaNs (it treats them as a zero guess), and vice versa.
  for (const std::string name : {"LI", "LSI", "F0"}) {
    LnfSetup setup;
    harness::SchemeFactoryConfig factory;
    const auto scheme = harness::make_scheme(name, factory, setup.x0);
    simrt::VirtualCluster cluster(simrt::paper_node(), 8);
    RecoveryContext ctx{setup.a, setup.b, cluster};
    RealVec x(128, 1.0);  // the exact solution
    FaultInjector::corrupt_block(setup.a.partition(), 2, x);
    FaultInjector::corrupt_block(setup.a.partition(), 5, x);
    const auto action =
        scheme->recover_multi(ctx, 10, IndexVec{2, 5}, x);
    EXPECT_EQ(action, solver::HookAction::kRestart) << name;
    for (const Real v : x) {
      EXPECT_FALSE(std::isnan(v)) << name;
    }
  }
}

TEST(MultiFaultRecoveryTest, AdjacentBlocksRecoverable) {
  // Neighbouring blocks share their halo: the hardest LI case.
  LnfSetup setup;
  auto scheme = ForwardRecovery::li_cg(1e-10);
  simrt::VirtualCluster cluster(simrt::paper_node(), 8);
  RecoveryContext ctx{setup.a, setup.b, cluster};
  RealVec x(128, 1.0);
  FaultInjector::corrupt_block(setup.a.partition(), 3, x);
  FaultInjector::corrupt_block(setup.a.partition(), 4, x);
  scheme->recover_multi(ctx, 10, IndexVec{3, 4}, x);
  for (const Real v : x) {
    EXPECT_FALSE(std::isnan(v));
  }
}

TEST(MultiFaultRecoveryTest, CheckpointRollsBackOnce) {
  LnfSetup setup;
  CheckpointOptions options;
  options.target = CheckpointTarget::kMemory;
  options.interval_iterations = 10;
  CheckpointRestart cr(options, setup.x0);
  simrt::VirtualCluster cluster(simrt::paper_node(), 8);
  RecoveryContext ctx{setup.a, setup.b, cluster};
  RealVec x(128, 5.0);
  cr.on_iteration(ctx, 10, x);
  FaultInjector::corrupt_block(setup.a.partition(), 1, x);
  FaultInjector::corrupt_block(setup.a.partition(), 6, x);
  cr.recover_multi(ctx, 14, IndexVec{1, 6}, x);
  // One rollback, not two: 4 iterations lost once.
  EXPECT_EQ(cr.recoveries(), 1);
  EXPECT_EQ(cr.iterations_rolled_back(), 4);
  for (const Real v : x) {
    EXPECT_DOUBLE_EQ(v, 5.0);
  }
}

class LnfEndToEndTest : public ::testing::TestWithParam<std::string> {};

TEST_P(LnfEndToEndTest, ConvergesUnderMultiRankFaults) {
  LnfSetup setup;
  harness::SchemeFactoryConfig factory;
  factory.cr_interval_iterations = 15;
  const auto scheme = harness::make_scheme(GetParam(), factory, setup.x0);
  simrt::VirtualCluster cluster(simrt::paper_node(), 8,
                                scheme->replica_factor());

  // Find the FF iteration count via a no-fault run first.
  Index ff_iterations = 0;
  {
    const auto probe = harness::make_scheme("F0", factory, setup.x0);
    simrt::VirtualCluster probe_cluster(simrt::paper_node(), 8);
    auto none = FaultInjector::none();
    RealVec x = setup.x0;
    const auto report = resilient_solve(setup.a, probe_cluster, setup.b, x,
                                        *probe, none, {});
    ff_iterations = report.cg.iterations;
  }

  auto injector = FaultInjector::evenly_spaced_multi(
      4, ff_iterations, /*ranks_per_fault=*/2, 8, 13);
  RealVec x = setup.x0;
  solver::CgOptions options;
  options.tolerance = 1e-12;
  const auto report = resilient_solve(setup.a, cluster, setup.b, x, *scheme,
                                      injector, options);
  EXPECT_TRUE(report.cg.converged) << GetParam();
  EXPECT_EQ(report.faults, 8);  // 4 events × 2 ranks
  EXPECT_TRUE(std::isfinite(report.cg.relative_residual));
}

INSTANTIATE_TEST_SUITE_P(Schemes, LnfEndToEndTest,
                         ::testing::Values("RD", "TMR", "F0", "LI", "LSI",
                                           "CR-M", "CR-D", "CR-2L"),
                         [](const auto& info) {
                           std::string name = info.param;
                           for (char& c : name) {
                             if (!std::isalnum(
                                     static_cast<unsigned char>(c))) {
                               c = '_';
                             }
                           }
                           return name;
                         });

}  // namespace
}  // namespace rsls::resilience
