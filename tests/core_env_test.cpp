// Unit tests: the typed RSLS_* environment registry — every knob is
// declared once with parseable defaults, the generic getters reject
// partial parses, and RSLS_JOBS resolves the Runner width.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <optional>
#include <set>
#include <string>

#include "core/env.hpp"

namespace rsls {
namespace {

/// RAII guard restoring one environment variable on scope exit.
class EnvGuard {
 public:
  explicit EnvGuard(const char* name) : name_(name) {
    const char* value = std::getenv(name);
    if (value != nullptr) {
      saved_ = value;
    }
  }
  ~EnvGuard() {
    if (saved_.has_value()) {
      ::setenv(name_, saved_->c_str(), 1);
    } else {
      ::unsetenv(name_);
    }
  }
  EnvGuard(const EnvGuard&) = delete;
  EnvGuard& operator=(const EnvGuard&) = delete;

 private:
  const char* name_;
  std::optional<std::string> saved_;
};

TEST(EnvRegistryTest, EveryKnobDeclaredOnceAndDocumented) {
  const auto& vars = env::registry();
  ASSERT_GE(vars.size(), 9u);
  std::set<std::string> names;
  for (const auto& var : vars) {
    EXPECT_TRUE(std::string(var.name).starts_with("RSLS_")) << var.name;
    EXPECT_TRUE(names.insert(var.name).second)
        << "duplicate registry entry: " << var.name;
    EXPECT_FALSE(std::string(var.type).empty()) << var.name;
    EXPECT_FALSE(std::string(var.fallback).empty()) << var.name;
    EXPECT_FALSE(std::string(var.description).empty()) << var.name;
  }
  // The knobs this PR documents are all present.
  for (const char* expected :
       {"RSLS_QUICK", "RSLS_JOBS", "RSLS_TRACE_DIR", "RSLS_RUN_REPORT",
        "RSLS_OBS_POWER_BIN", "RSLS_BENCH_JSON", "RSLS_LOG_LEVEL",
        "RSLS_NET_TOPOLOGY", "RSLS_NET_COLLECTIVE"}) {
    EXPECT_TRUE(names.contains(expected)) << expected;
  }
}

TEST(EnvRegistryTest, UnknownRslsVarsAreDetected) {
  EnvGuard guard("RSLS_TYPO_KNOB");
  ::setenv("RSLS_TYPO_KNOB", "1", 1);
  const auto unknown = env::unknown_rsls_vars();
  EXPECT_NE(std::find(unknown.begin(), unknown.end(), "RSLS_TYPO_KNOB"),
            unknown.end());
  // Registered knobs never show up as unknown, set or not.
  for (const auto& var : env::registry()) {
    EXPECT_EQ(std::find(unknown.begin(), unknown.end(), var.name),
              unknown.end())
        << var.name;
  }
}

TEST(EnvRegistryTest, TypedGettersParseAndFallBack) {
  EnvGuard guard("RSLS_ENVTEST");
  ::unsetenv("RSLS_ENVTEST");
  EXPECT_EQ(env::get_int("RSLS_ENVTEST", 7), 7);
  EXPECT_DOUBLE_EQ(env::get_double("RSLS_ENVTEST", 0.25), 0.25);
  EXPECT_FALSE(env::get_bool("RSLS_ENVTEST", false));
  EXPECT_EQ(env::get_string("RSLS_ENVTEST", "dflt"), "dflt");

  ::setenv("RSLS_ENVTEST", "42", 1);
  EXPECT_EQ(env::get_int("RSLS_ENVTEST", 7), 42);
  ::setenv("RSLS_ENVTEST", "-3", 1);
  EXPECT_EQ(env::get_int("RSLS_ENVTEST", 7), -3);
  ::setenv("RSLS_ENVTEST", "0.5", 1);
  EXPECT_DOUBLE_EQ(env::get_double("RSLS_ENVTEST", 0.25), 0.5);
  ::setenv("RSLS_ENVTEST", "on", 1);
  EXPECT_TRUE(env::get_bool("RSLS_ENVTEST", false));
  ::setenv("RSLS_ENVTEST", "0", 1);
  EXPECT_FALSE(env::get_bool("RSLS_ENVTEST", true));

  // Partial and failed parses fall back instead of truncating.
  ::setenv("RSLS_ENVTEST", "12abc", 1);
  EXPECT_EQ(env::get_int("RSLS_ENVTEST", 7), 7);
  ::setenv("RSLS_ENVTEST", "1.5x", 1);
  EXPECT_DOUBLE_EQ(env::get_double("RSLS_ENVTEST", 0.25), 0.25);
  ::setenv("RSLS_ENVTEST", "zz", 1);
  EXPECT_EQ(env::get_int("RSLS_ENVTEST", 7), 7);
}

TEST(EnvRegistryTest, JobsResolvesRunnerWidth) {
  EnvGuard guard("RSLS_JOBS");
  ::unsetenv("RSLS_JOBS");
  EXPECT_EQ(env::jobs(), 1);  // unset -> serial
  ::setenv("RSLS_JOBS", "6", 1);
  EXPECT_EQ(env::jobs(), 6);
  ::setenv("RSLS_JOBS", "0", 1);
  EXPECT_GE(env::jobs(), 1);  // 0 -> one per hardware thread
  ::setenv("RSLS_JOBS", "garbage", 1);
  EXPECT_EQ(env::jobs(), 1);
}

TEST(EnvRegistryTest, OptionalAccessorsReflectPresence) {
  EnvGuard trace("RSLS_TRACE_DIR");
  EnvGuard bin("RSLS_OBS_POWER_BIN");
  ::unsetenv("RSLS_TRACE_DIR");
  ::unsetenv("RSLS_OBS_POWER_BIN");
  EXPECT_FALSE(env::trace_dir().has_value());
  EXPECT_FALSE(env::obs_power_bin().has_value());
  ::setenv("RSLS_TRACE_DIR", "/tmp/traces", 1);
  ::setenv("RSLS_OBS_POWER_BIN", "0.01", 1);
  EXPECT_EQ(env::trace_dir().value(), "/tmp/traces");
  EXPECT_DOUBLE_EQ(env::obs_power_bin().value(), 0.01);
}

}  // namespace
}  // namespace rsls
