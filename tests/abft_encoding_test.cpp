// Unit tests: the ABFT codeword layer (abft/encoding.hpp) — Vandermonde
// parity encode/decode exactness for every loss pattern up to m, padding
// of uneven blocks, rejection beyond m, and cost charging under
// PhaseTag::kEncode.

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "abft/encoding.hpp"
#include "core/error.hpp"
#include "core/rng.hpp"
#include "simrt/machine.hpp"

namespace rsls::abft {
namespace {

using power::PhaseTag;

RealVec random_vector(Index n, std::uint64_t seed) {
  Rng rng(seed);
  RealVec v(static_cast<std::size_t>(n));
  for (Real& value : v) {
    value = rng.uniform(-10.0, 10.0);
  }
  return v;
}

void nan_block(const dist::Partition& part, Index rank, RealVec& v) {
  for (Index i = part.begin(rank); i < part.end(rank); ++i) {
    v[static_cast<std::size_t>(i)] = std::numeric_limits<Real>::quiet_NaN();
  }
}

TEST(AbftEncodingTest, ChecksumRowIsPlainSum) {
  const dist::Partition part(64, 8);
  const Encoding code(part, 2);
  for (Index i = 0; i < 8; ++i) {
    EXPECT_DOUBLE_EQ(code.coefficient(0, i), 1.0);
  }
  const RealVec v(64, 1.0);
  const Parity parity = code.encode(v);
  ASSERT_EQ(parity.size(), 2u);
  // Row 0 of an all-ones vector: each padded slot sums one entry per
  // block, so every slot equals the number of data blocks.
  for (const Real slot : parity[0]) {
    EXPECT_NEAR(slot, 8.0, 1e-12);
  }
}

TEST(AbftEncodingTest, SingleLossDecodesExactly) {
  const dist::Partition part(100, 8);  // uneven: widths 13 and 12
  const Encoding code(part, 1);
  const RealVec original = random_vector(100, 42);
  const Parity parity = code.encode(original);
  for (Index lost = 0; lost < 8; ++lost) {
    RealVec v = original;
    nan_block(part, lost, v);
    code.decode(v, IndexVec{lost}, parity);
    for (std::size_t i = 0; i < v.size(); ++i) {
      EXPECT_NEAR(v[i], original[i], 1e-11) << "lost=" << lost << " i=" << i;
    }
  }
}

TEST(AbftEncodingTest, EveryPairOfLossesDecodesExactly) {
  const dist::Partition part(100, 8);
  const Encoding code(part, 2);
  const RealVec original = random_vector(100, 7);
  const Parity parity = code.encode(original);
  for (Index a = 0; a < 8; ++a) {
    for (Index b = a + 1; b < 8; ++b) {
      RealVec v = original;
      nan_block(part, a, v);
      nan_block(part, b, v);
      code.decode(v, IndexVec{a, b}, parity);
      for (std::size_t i = 0; i < v.size(); ++i) {
        EXPECT_NEAR(v[i], original[i], 1e-10)
            << "lost={" << a << "," << b << "} i=" << i;
      }
    }
  }
}

TEST(AbftEncodingTest, TripleLossNeedsThreeParityBlocks) {
  const dist::Partition part(90, 6);
  const Encoding code(part, 3);
  const RealVec original = random_vector(90, 11);
  const Parity parity = code.encode(original);
  RealVec v = original;
  nan_block(part, 0, v);
  nan_block(part, 3, v);
  nan_block(part, 5, v);
  code.decode(v, IndexVec{5, 0, 3}, parity);  // order must not matter
  for (std::size_t i = 0; i < v.size(); ++i) {
    EXPECT_NEAR(v[i], original[i], 1e-9);
  }
}

TEST(AbftEncodingTest, PaddedUnevenBlocksRoundTrip) {
  const dist::Partition part(10, 4);  // widths 3,3,2,2
  const Encoding code(part, 2);
  EXPECT_EQ(code.width(), 3);
  const RealVec original = random_vector(10, 3);
  const Parity parity = code.encode(original);
  RealVec v = original;
  nan_block(part, 0, v);  // widest
  nan_block(part, 3, v);  // narrowest
  code.decode(v, IndexVec{0, 3}, parity);
  for (std::size_t i = 0; i < v.size(); ++i) {
    EXPECT_NEAR(v[i], original[i], 1e-12);
  }
}

TEST(AbftEncodingTest, RejectsMoreLossesThanParity) {
  const dist::Partition part(64, 8);
  const Encoding code(part, 2);
  EXPECT_TRUE(code.can_decode(0));
  EXPECT_TRUE(code.can_decode(2));
  EXPECT_FALSE(code.can_decode(3));
  RealVec v = random_vector(64, 5);
  const Parity parity = code.encode(v);
  EXPECT_THROW(code.decode(v, IndexVec{0, 1, 2}, parity), Error);
}

TEST(AbftEncodingTest, RequiresAtLeastOneParityBlock) {
  const dist::Partition part(64, 8);
  EXPECT_THROW(Encoding(part, 0), Error);
}

TEST(AbftEncodingTest, ChargeEncodeBillsTheEncodePhase) {
  const dist::Partition part(128, 8);
  const Encoding code(part, 2);
  simrt::VirtualCluster cluster(simrt::paper_node(), 8);
  code.charge_encode(cluster, /*vectors=*/3, PhaseTag::kEncode);
  EXPECT_GT(cluster.elapsed(), 0.0);
  EXPECT_GT(cluster.energy().core_energy(PhaseTag::kEncode), 0.0);
  EXPECT_DOUBLE_EQ(cluster.energy().core_energy(PhaseTag::kSolve), 0.0);
}

TEST(AbftEncodingTest, ChargeDecodeBillsTheGivenPhase) {
  const dist::Partition part(128, 8);
  const Encoding code(part, 2);
  simrt::VirtualCluster cluster(simrt::paper_node(), 8);
  code.charge_decode(cluster, IndexVec{1, 6}, /*vectors=*/3,
                     PhaseTag::kReconstruct);
  EXPECT_GT(cluster.elapsed(), 0.0);
  EXPECT_GT(cluster.energy().core_energy(PhaseTag::kReconstruct), 0.0);
}

TEST(AbftEncodingTest, EncodeIsLinearLikeTheIncrementalUpdate) {
  // parity(v + α·w) == parity(v) + α·parity(w): the from-scratch encode
  // equals the axpy-time incremental maintenance a deployment performs.
  const dist::Partition part(48, 6);
  const Encoding code(part, 2);
  const RealVec v = random_vector(48, 1);
  const RealVec w = random_vector(48, 2);
  const Real alpha = 0.37;
  RealVec combo(48);
  for (std::size_t i = 0; i < combo.size(); ++i) {
    combo[i] = v[i] + alpha * w[i];
  }
  const Parity pv = code.encode(v);
  const Parity pw = code.encode(w);
  const Parity pc = code.encode(combo);
  for (std::size_t j = 0; j < pc.size(); ++j) {
    for (std::size_t t = 0; t < pc[j].size(); ++t) {
      EXPECT_NEAR(pc[j][t], pv[j][t] + alpha * pw[j][t], 1e-11);
    }
  }
}

}  // namespace
}  // namespace rsls::abft
