// Integration tests: the paper's headline qualitative results, verified
// end-to-end at small scale so they run in CI time. The full-scale
// versions live in bench/ (DESIGN.md §4); these tests pin the same shapes
// on quick workloads so a regression is caught before any bench runs.

#include <gtest/gtest.h>

#include "harness/experiment.hpp"
#include "harness/scheme_factory.hpp"
#include "sparse/roster.hpp"

namespace rsls::harness {
namespace {

struct QuickExperiment {
  ExperimentConfig config;
  Workload workload;
  FfBaseline ff;

  explicit QuickExperiment(const std::string& matrix, Index processes = 48,
                           Index faults = 10)
      : config(),
        workload(Workload::create(
            sparse::roster_entry(matrix).make(/*quick=*/true), processes)),
        ff{} {
    config.processes = processes;
    config.faults = faults;
    config.scheme.cr_interval_iterations = 50;
    ff = run_fault_free(workload, config);
  }

  SchemeRun run(const std::string& scheme) {
    return run_scheme(workload, scheme, config, ff);
  }
};

// Table 4 / Fig. 5: RD tracks the fault-free execution exactly.
TEST(PaperShapesTest, RdMatchesFaultFree) {
  QuickExperiment exp("crystm02");
  const auto rd = exp.run("RD");
  EXPECT_EQ(rd.report.cg.iterations, exp.ff.iterations);
  EXPECT_NEAR(rd.power_ratio, 2.0, 0.05);
  EXPECT_NEAR(rd.energy_ratio, 2.0, 0.1);
}

// Fig. 5: F0/FI need the most iterations; LI/LSI fewer on a banded
// matrix whose blocks dominate its bandwidth.
TEST(PaperShapesTest, InterpolationAccuracyOrdering) {
  QuickExperiment exp("crystm02");
  const auto f0 = exp.run("F0");
  const auto fi = exp.run("FI");
  const auto li = exp.run("LI");
  const auto lsi = exp.run("LSI");
  EXPECT_GT(f0.iteration_ratio, 1.3);
  EXPECT_NEAR(f0.iteration_ratio, fi.iteration_ratio, 0.15);
  EXPECT_LT(li.iteration_ratio, f0.iteration_ratio * 0.85);
  EXPECT_LT(lsi.iteration_ratio, f0.iteration_ratio * 0.85);
}

// §5.2: on small-block matrices LI degrades toward F0.
TEST(PaperShapesTest, SmallBlocksDegradeInterpolation) {
  QuickExperiment exp("bcsstk06");  // 105 rows quick → ~2 rows per block
  const auto f0 = exp.run("F0");
  const auto li = exp.run("LI");
  EXPECT_GT(li.iteration_ratio, f0.iteration_ratio * 0.8);
}

// Fig. 3 / Table 5: CR-D pays more time and energy than CR-M.
TEST(PaperShapesTest, DiskCheckpointsCostMoreThanMemory) {
  QuickExperiment exp("crystm02");
  const auto crd = exp.run("CR-D");
  const auto crm = exp.run("CR-M");
  EXPECT_EQ(crd.report.cg.iterations, crm.report.cg.iterations);
  EXPECT_GT(crd.time_ratio, crm.time_ratio);
  EXPECT_GT(crd.energy_ratio, crm.energy_ratio);
}

// Fig. 7: DVFS power management keeps time, trims energy.
TEST(PaperShapesTest, DvfsSavesEnergyWithoutSlowdown) {
  QuickExperiment exp("nd24k");
  const auto li = exp.run("LI");
  const auto li_dvfs = exp.run("LI-DVFS");
  EXPECT_EQ(li.report.cg.iterations, li_dvfs.report.cg.iterations);
  EXPECT_NEAR(li_dvfs.time_ratio, li.time_ratio, li.time_ratio * 0.02);
  EXPECT_LT(li_dvfs.energy_ratio, li.energy_ratio);
  EXPECT_LT(li_dvfs.power_ratio, li.power_ratio);
}

// Fig. 4: CG-based construction is cheaper than the exact baselines.
TEST(PaperShapesTest, LocalCgConstructionCheaperThanExact) {
  QuickExperiment exp("Kuu", /*processes=*/24, /*faults=*/5);
  const auto lu = exp.run("LI(LU)");
  const auto cg = exp.run("LI");
  EXPECT_LT(cg.report.time, lu.report.time);
  const auto qr = exp.run("LSI(QR)");
  const auto lsi = exp.run("LSI");
  EXPECT_LT(lsi.report.time, qr.report.time);
}

// §5.2: more faults, more iterations (but still convergent).
TEST(PaperShapesTest, IterationCostGrowsWithFaultCount) {
  QuickExperiment few("crystm02", 48, 2);
  QuickExperiment many("crystm02", 48, 10);
  const auto f0_few = few.run("F0");
  const auto f0_many = many.run("F0");
  EXPECT_GT(f0_many.iteration_ratio, f0_few.iteration_ratio);
}

}  // namespace
}  // namespace rsls::harness
