// SDC detection and nested-fault hardening: detector units (flagging +
// localization), the detect→localize→recover loop end-to-end, checkpoint
// integrity verification, nested faults, and the escalation ladder.

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "core/error.hpp"
#include "harness/scheme_factory.hpp"
#include "resilience/checkpoint.hpp"
#include "resilience/detector.hpp"
#include "resilience/resilient_solve.hpp"
#include "sparse/generators.hpp"
#include "sparse/roster.hpp"
#include "sparse/vector_ops.hpp"

namespace rsls::resilience {
namespace {

constexpr Index kParts = 8;

struct SolveSetup {
  dist::DistMatrix a;
  RealVec b;
  RealVec x0;

  explicit SolveSetup(sparse::Csr matrix, Index parts = kParts)
      : a(std::move(matrix), parts),
        b(sparse::make_rhs(a.global())),
        x0(static_cast<std::size_t>(a.rows()), 0.0) {}
};

sparse::Csr test_matrix() {
  return sparse::banded_spd({192, 4, 1.0, 0.02, 0.0, 31});
}

Index ff_iterations_of(SolveSetup& setup, Seconds* time_out = nullptr) {
  class NoRecovery final : public RecoveryScheme {
   public:
    std::string name() const override { return "FF"; }
    solver::HookAction recover(RecoveryContext&, Index, Index,
                               std::span<Real>) override {
      throw Error("unexpected fault");
    }
  };
  NoRecovery none;
  simrt::VirtualCluster cluster(simrt::paper_node(), kParts);
  auto injector = FaultInjector::none();
  RealVec x = setup.x0;
  solver::CgOptions options;
  options.tolerance = 1e-12;
  const auto report = resilient_solve(setup.a, cluster, setup.b, x, none,
                                      injector, options);
  EXPECT_TRUE(report.cg.converged);
  if (time_out != nullptr) {
    *time_out = report.time;
  }
  return report.cg.iterations;
}

ResilientSolveReport run_with(SolveSetup& setup,
                              const std::string& scheme_name,
                              FaultInjector& injector, DetectorSuite& suite,
                              Index ff_iterations,
                              const HardeningOptions& hardening = {}) {
  harness::SchemeFactoryConfig factory;
  factory.cr_interval_iterations = 20;
  factory.fw_cg_tolerance = 1e-10;
  const auto scheme = harness::make_scheme(scheme_name, factory, setup.x0);
  simrt::VirtualCluster cluster(simrt::paper_node(), kParts,
                                scheme->replica_factor());
  RealVec x = setup.x0;
  solver::CgOptions options;
  options.tolerance = 1e-12;
  options.ff_iterations = ff_iterations;
  return resilient_solve(setup.a, cluster, setup.b, x, *scheme, injector,
                         options, suite, hardening);
}

// --- Detector units --------------------------------------------------------

TEST(BlockChecksumDetectorTest, LocalizesTheCorruptedBlock) {
  SolveSetup setup(test_matrix());
  simrt::VirtualCluster cluster(simrt::paper_node(), kParts);
  DetectionContext ctx{setup.a, setup.b, cluster};
  RealVec x(setup.x0.size(), 1.0);

  BlockChecksumDetector detector;
  detector.observe(ctx, 1, x);
  auto clean = detector.inspect(ctx, 1, 0.5, x);
  EXPECT_FALSE(clean.flagged);

  FaultInjector::corrupt_block_sdc(setup.a.partition(), 5, x, 77);
  auto verdict = detector.inspect(ctx, 1, 0.5, x);
  EXPECT_TRUE(verdict.flagged);
  ASSERT_EQ(verdict.suspect_ranks.size(), 1u);
  EXPECT_EQ(verdict.suspect_ranks.front(), 5);
  EXPECT_FALSE(verdict.derived_state_only);
  EXPECT_EQ(verdict.detector, "checksum");
  EXPECT_EQ(detector.detections(), 1);
}

TEST(BlockChecksumDetectorTest, SilentBeforeFirstObserve) {
  SolveSetup setup(test_matrix());
  simrt::VirtualCluster cluster(simrt::paper_node(), kParts);
  DetectionContext ctx{setup.a, setup.b, cluster};
  RealVec x(setup.x0.size(), 1.0);
  BlockChecksumDetector detector;
  EXPECT_FALSE(detector.inspect(ctx, 1, 0.5, x).flagged);
}

TEST(NormBoundDetectorTest, FlagsNonFiniteEntries) {
  SolveSetup setup(test_matrix());
  simrt::VirtualCluster cluster(simrt::paper_node(), kParts);
  DetectionContext ctx{setup.a, setup.b, cluster};
  RealVec x(setup.x0.size(), 1.0);
  x[static_cast<std::size_t>(setup.a.partition().begin(3))] =
      std::numeric_limits<Real>::quiet_NaN();

  NormBoundDetector detector;
  auto verdict = detector.inspect(ctx, 1, 0.5, x);
  EXPECT_TRUE(verdict.flagged);
  ASSERT_EQ(verdict.suspect_ranks.size(), 1u);
  EXPECT_EQ(verdict.suspect_ranks.front(), 3);
}

TEST(NormBoundDetectorTest, FlagsNonFiniteRecurrenceAsDerivedState) {
  SolveSetup setup(test_matrix());
  simrt::VirtualCluster cluster(simrt::paper_node(), kParts);
  DetectionContext ctx{setup.a, setup.b, cluster};
  RealVec x(setup.x0.size(), 1.0);
  NormBoundDetector detector;
  auto verdict = detector.inspect(
      ctx, 1, std::numeric_limits<Real>::quiet_NaN(), x);
  EXPECT_TRUE(verdict.flagged);
  EXPECT_TRUE(verdict.derived_state_only);
  EXPECT_TRUE(verdict.suspect_ranks.empty());
}

TEST(ResidualGapDetectorTest, FlagsCorruptedIterate) {
  SolveSetup setup(test_matrix());
  simrt::VirtualCluster cluster(simrt::paper_node(), kParts);
  DetectionContext ctx{setup.a, setup.b, cluster};
  // x = 0 has true relative residual exactly 1.
  RealVec x = setup.x0;
  ResidualGapDetector detector(/*cadence=*/1, /*gap_factor=*/1e3);
  EXPECT_FALSE(detector.inspect(ctx, 1, 1.0, x).flagged);

  FaultInjector::corrupt_block_sdc(setup.a.partition(), 6, x, 123);
  auto verdict = detector.inspect(ctx, 1, 1.0, x);
  EXPECT_TRUE(verdict.flagged);
  EXPECT_FALSE(verdict.derived_state_only);
  EXPECT_FALSE(verdict.suspect_ranks.empty());
  EXPECT_NE(std::find(verdict.suspect_ranks.begin(),
                      verdict.suspect_ranks.end(), 6),
            verdict.suspect_ranks.end());
}

TEST(ResidualGapDetectorTest, FlagsCorruptedRecurrenceAsDerivedState) {
  SolveSetup setup(test_matrix());
  simrt::VirtualCluster cluster(simrt::paper_node(), kParts);
  DetectionContext ctx{setup.a, setup.b, cluster};
  RealVec x = setup.x0;  // clean, rel_true = 1
  ResidualGapDetector detector(1, 1e3);
  auto verdict = detector.inspect(ctx, 1, /*recurrence=*/1e7, x);
  EXPECT_TRUE(verdict.flagged);
  EXPECT_TRUE(verdict.derived_state_only);
}

TEST(ValidateStateTest, AcceptsCleanRejectsCorrupted) {
  SolveSetup setup(test_matrix());
  simrt::VirtualCluster cluster(simrt::paper_node(), kParts);
  DetectionContext ctx{setup.a, setup.b, cluster};
  RealVec x = setup.x0;
  EXPECT_FALSE(validate_state(ctx, x).flagged);

  FaultInjector::corrupt_block_sdc(setup.a.partition(), 2, x, 9);
  auto verdict = validate_state(ctx, x, /*residual_bound=*/1e2);
  EXPECT_TRUE(verdict.flagged);
  EXPECT_FALSE(verdict.suspect_ranks.empty());
}

// --- End-to-end: undetected vs detected ------------------------------------

TEST(SdcEndToEndTest, UndetectedCorruptionEndsWrong) {
  SolveSetup setup(test_matrix());
  const Index ff = ff_iterations_of(setup);
  auto injector = FaultInjector::evenly_spaced(2, ff, kParts, 5);
  injector.as_sdc();
  DetectorSuite no_detectors;
  const auto report = run_with(setup, "LI", injector, no_detectors, ff);
  // The recurrence never sees the corrupted x: the solver "converges"…
  EXPECT_TRUE(report.cg.converged);
  EXPECT_LE(report.cg.relative_residual, 1e-12);
  // …on a grossly wrong answer, and nobody recovered anything.
  EXPECT_GT(report.true_relative_residual, 1.0);
  EXPECT_EQ(report.detections, 0);
  EXPECT_EQ(report.recoveries, 0);
  EXPECT_EQ(report.faults, 2);
}

TEST(SdcEndToEndTest, DetectedCorruptionRecoversSameSeed) {
  SolveSetup setup(test_matrix());
  const Index ff = ff_iterations_of(setup);
  auto injector = FaultInjector::evenly_spaced(2, ff, kParts, 5);
  injector.as_sdc();
  DetectorSuite suite = make_detector_suite(DetectionOptions{});
  const auto report = run_with(setup, "LI", injector, suite, ff);
  EXPECT_TRUE(report.cg.converged);
  EXPECT_LE(report.true_relative_residual, 1e-10);
  EXPECT_EQ(report.faults, 2);
  EXPECT_EQ(report.detections, 2);
  EXPECT_GE(report.recoveries, 2);
  EXPECT_EQ(report.escalations, 0);
  // Detection work was charged to its own phase.
  EXPECT_GT(report.account.core_energy(power::PhaseTag::kDetect), 0.0);
}

TEST(SdcEndToEndTest, RollbackSchemeRecoversDetectedCorruption) {
  SolveSetup setup(test_matrix());
  const Index ff = ff_iterations_of(setup);
  auto injector = FaultInjector::evenly_spaced(2, ff, kParts, 5);
  injector.as_sdc();
  DetectorSuite suite = make_detector_suite(DetectionOptions{});
  const auto report = run_with(setup, "CR-M", injector, suite, ff);
  EXPECT_TRUE(report.cg.converged);
  EXPECT_LE(report.true_relative_residual, 1e-10);
  EXPECT_EQ(report.detections, 2);
}

TEST(SdcEndToEndTest, BitFlipCorruptionDetectedAndRecovered) {
  SolveSetup setup(test_matrix());
  const Index ff = ff_iterations_of(setup);
  auto injector = FaultInjector::evenly_spaced(2, ff, kParts, 5);
  injector.as_sdc(SdcMode::kBitFlip, SdcTarget::kIterate, /*bitflips=*/8);
  DetectorSuite suite = make_detector_suite(DetectionOptions{});
  const auto report = run_with(setup, "LI", injector, suite, ff);
  EXPECT_TRUE(report.cg.converged);
  EXPECT_LE(report.true_relative_residual, 1e-10);
  EXPECT_EQ(report.detections, 2);
}

TEST(SdcEndToEndTest, RecurrenceCorruptionDetectedViaResidualGap) {
  SolveSetup setup(test_matrix());
  const Index ff = ff_iterations_of(setup);
  auto injector = FaultInjector::evenly_spaced(1, ff, kParts, 5);
  injector.as_sdc(SdcMode::kGarbage, SdcTarget::kResidual);
  // Only the residual-gap detector can see recurrence corruption.
  DetectionOptions options;
  options.enable_checksum = false;
  options.enable_norm_bound = false;
  options.residual_gap_cadence = 1;
  DetectorSuite suite = make_detector_suite(options);
  const auto report = run_with(setup, "LI", injector, suite, ff);
  EXPECT_TRUE(report.cg.converged);
  EXPECT_LE(report.true_relative_residual, 1e-10);
  EXPECT_GE(report.detections, 1);
}

TEST(SdcEndToEndTest, NoFalseAlarmsFaultFree) {
  SolveSetup setup(test_matrix());
  const Index ff = ff_iterations_of(setup);
  auto injector = FaultInjector::none();
  DetectorSuite suite = make_detector_suite(DetectionOptions{});
  const auto report = run_with(setup, "LI", injector, suite, ff);
  EXPECT_TRUE(report.cg.converged);
  EXPECT_EQ(report.detections, 0);
  EXPECT_EQ(report.recoveries, 0);
  // Detection never alters the trajectory, only charges time/energy.
  EXPECT_EQ(report.cg.iterations, ff);
  EXPECT_GT(report.account.core_energy(power::PhaseTag::kDetect), 0.0);
}

// --- Nested faults ---------------------------------------------------------

TEST(NestedFaultTest, FaultDuringRecoveryIsRecoveredToo) {
  SolveSetup setup(test_matrix());
  Seconds ff_time = 0.0;
  const Index ff = ff_iterations_of(setup, &ff_time);
  // Second stamp lands a hair after the first: the first fault's recovery
  // advances the virtual clock past it, so it strikes mid-recovery.
  const Seconds t1 = 0.3 * ff_time;
  auto injector =
      FaultInjector::at_times({t1, t1 + 1e-9}, kParts, 5);
  DetectorSuite no_detectors;
  const auto report = run_with(setup, "LI", injector, no_detectors, ff);
  EXPECT_TRUE(report.cg.converged);
  EXPECT_LE(report.cg.relative_residual, 1e-12);
  EXPECT_EQ(report.faults, 2);
  EXPECT_EQ(report.recoveries, 2);
  EXPECT_EQ(report.nested_faults, 1);
}

TEST(NestedFaultTest, NestedSdcIsCaughtByDetectors) {
  SolveSetup setup(test_matrix());
  Seconds ff_time = 0.0;
  const Index ff = ff_iterations_of(setup, &ff_time);
  const Seconds t1 = 0.3 * ff_time;
  auto injector =
      FaultInjector::at_times({t1, t1 + 1e-9}, kParts, 5);
  injector.as_sdc();
  DetectorSuite suite = make_detector_suite(DetectionOptions{});
  const auto report = run_with(setup, "LI", injector, suite, ff);
  EXPECT_TRUE(report.cg.converged);
  EXPECT_LE(report.true_relative_residual, 1e-10);
  EXPECT_EQ(report.faults, 2);
  EXPECT_GE(report.detections, 1);
}

// --- Checkpoint integrity --------------------------------------------------

RecoveryContext make_ctx(SolveSetup& setup, simrt::VirtualCluster& cluster) {
  return RecoveryContext{setup.a, setup.b, cluster};
}

TEST(CheckpointIntegrityTest, CorruptedSnapshotFallsBackToOlder) {
  SolveSetup setup(test_matrix());
  simrt::VirtualCluster cluster(simrt::paper_node(), kParts);
  auto ctx = make_ctx(setup, cluster);
  CheckpointOptions options;
  options.target = CheckpointTarget::kMemory;
  options.interval_iterations = 20;
  options.history = 2;
  CheckpointRestart cr(options, setup.x0);

  RealVec x(setup.x0.size(), 1.0);
  cr.on_iteration(ctx, 20, x);
  for (Real& v : x) {
    v = 2.0;
  }
  cr.on_iteration(ctx, 40, x);
  ASSERT_EQ(cr.snapshots_held(), 2);

  cr.corrupt_snapshot(0);  // newest (iteration 40)
  cr.recover(ctx, 45, 0, x);
  EXPECT_EQ(cr.integrity_failures(), 1);
  // Restored the older, intact snapshot — never the corrupted one.
  EXPECT_DOUBLE_EQ(x.front(), 1.0);
  EXPECT_DOUBLE_EQ(x.back(), 1.0);
  EXPECT_EQ(cr.iterations_rolled_back(), 25);
}

TEST(CheckpointIntegrityTest, AllSnapshotsCorruptedFallsBackToInitialGuess) {
  SolveSetup setup(test_matrix());
  simrt::VirtualCluster cluster(simrt::paper_node(), kParts);
  auto ctx = make_ctx(setup, cluster);
  CheckpointOptions options;
  options.target = CheckpointTarget::kMemory;
  options.interval_iterations = 20;
  options.history = 2;
  CheckpointRestart cr(options, setup.x0);

  RealVec x(setup.x0.size(), 1.0);
  cr.on_iteration(ctx, 20, x);
  cr.on_iteration(ctx, 40, x);
  cr.corrupt_snapshot(0);
  cr.corrupt_snapshot(1);
  cr.recover(ctx, 45, 0, x);
  EXPECT_EQ(cr.integrity_failures(), 2);
  EXPECT_EQ(x, setup.x0);
  EXPECT_EQ(cr.iterations_rolled_back(), 45);
}

TEST(CheckpointIntegrityTest, BitRotEndToEndStillConverges) {
  SolveSetup setup(test_matrix());
  const Index ff = ff_iterations_of(setup);
  CheckpointOptions options;
  options.target = CheckpointTarget::kMemory;
  options.interval_iterations = 20;
  options.bitrot_every_n = 1;  // every snapshot rots in storage
  CheckpointRestart cr(options, setup.x0);
  simrt::VirtualCluster cluster(simrt::paper_node(), kParts);
  auto injector = FaultInjector::evenly_spaced(3, ff, kParts, 5);
  RealVec x = setup.x0;
  solver::CgOptions cg_options;
  cg_options.tolerance = 1e-12;
  cg_options.ff_iterations = ff;
  const auto report = resilient_solve(setup.a, cluster, setup.b, x, cr,
                                      injector, cg_options);
  // Every rollback found only rotten checkpoints, fell back to the
  // initial guess, and the solve still converged to the true solution.
  EXPECT_TRUE(report.cg.converged);
  EXPECT_LE(report.true_relative_residual, 1e-10);
  EXPECT_GE(cr.integrity_failures(), 3);
  EXPECT_EQ(report.faults, 3);
}

TEST(CheckpointIntegrityTest, HistoryIsBounded) {
  SolveSetup setup(test_matrix());
  simrt::VirtualCluster cluster(simrt::paper_node(), kParts);
  auto ctx = make_ctx(setup, cluster);
  CheckpointOptions options;
  options.target = CheckpointTarget::kMemory;
  options.interval_iterations = 10;
  options.history = 3;
  CheckpointRestart cr(options, setup.x0);
  RealVec x(setup.x0.size(), 1.0);
  for (Index it = 10; it <= 100; it += 10) {
    cr.on_iteration(ctx, it, x);
  }
  EXPECT_EQ(cr.checkpoints_taken(), 10);
  EXPECT_EQ(cr.snapshots_held(), 3);
}

// --- Escalation ladder -----------------------------------------------------

/// A scheme whose localized recovery never repairs anything: validation
/// must fail and the loop must escalate to the initial-guess restart.
class BrokenScheme final : public RecoveryScheme {
 public:
  std::string name() const override { return "broken"; }
  solver::HookAction recover(RecoveryContext&, Index, Index,
                             std::span<Real>) override {
    count_recovery();
    return solver::HookAction::kRestart;  // claims success, fixed nothing
  }
};

TEST(EscalationTest, BrokenSchemeEscalatesToInitialGuessRestart) {
  SolveSetup setup(test_matrix());
  const Index ff = ff_iterations_of(setup);
  auto injector = FaultInjector::evenly_spaced(1, ff, kParts, 5);
  injector.as_sdc();
  BrokenScheme scheme;
  DetectorSuite suite = make_detector_suite(DetectionOptions{});
  simrt::VirtualCluster cluster(simrt::paper_node(), kParts);
  RealVec x = setup.x0;
  solver::CgOptions options;
  options.tolerance = 1e-12;
  options.ff_iterations = ff;
  const auto report = resilient_solve(setup.a, cluster, setup.b, x, scheme,
                                      injector, options, suite);
  EXPECT_TRUE(report.cg.converged);
  EXPECT_LE(report.true_relative_residual, 1e-10);
  EXPECT_EQ(report.detections, 1);
  // Rung 1 (no rollback available) and rung 2 (initial guess) were hit.
  EXPECT_EQ(report.escalations, 2);
}

TEST(EscalationTest, CheckpointRollbackSatisfiesEscalation) {
  // A checkpointing scheme whose *localized* recovery is broken still
  // recovers through rung 1: its rollback restores a verified snapshot.
  class BrokenButRollbackable final : public RecoveryScheme {
   public:
    explicit BrokenButRollbackable(RealVec initial_guess)
        : cr_({CheckpointTarget::kMemory, 20}, std::move(initial_guess)) {}
    std::string name() const override { return "broken+cr"; }
    void on_iteration(RecoveryContext& ctx, Index iteration,
                      std::span<const Real> x) override {
      cr_.on_iteration(ctx, iteration, x);
    }
    solver::HookAction recover(RecoveryContext&, Index, Index,
                               std::span<Real>) override {
      count_recovery();
      return solver::HookAction::kRestart;
    }
    bool rollback(RecoveryContext& ctx, Index iteration,
                  std::span<Real> x) override {
      return cr_.rollback(ctx, iteration, x);
    }

   private:
    CheckpointRestart cr_;
  };

  SolveSetup setup(test_matrix());
  const Index ff = ff_iterations_of(setup);
  auto injector = FaultInjector::evenly_spaced(1, ff, kParts, 5);
  injector.as_sdc();
  BrokenButRollbackable scheme(setup.x0);
  DetectorSuite suite = make_detector_suite(DetectionOptions{});
  simrt::VirtualCluster cluster(simrt::paper_node(), kParts);
  RealVec x = setup.x0;
  solver::CgOptions options;
  options.tolerance = 1e-12;
  options.ff_iterations = ff;
  const auto report = resilient_solve(setup.a, cluster, setup.b, x, scheme,
                                      injector, options, suite);
  EXPECT_TRUE(report.cg.converged);
  EXPECT_LE(report.true_relative_residual, 1e-10);
  // Rung 1 sufficed: exactly one escalation, not two.
  EXPECT_EQ(report.escalations, 1);
}

}  // namespace
}  // namespace rsls::resilience
