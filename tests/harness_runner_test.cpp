// Tier-1 tests: harness::Runner — the parallel batch engine must return
// results in spec order, honor per-cell overrides and custom bodies,
// and produce bit-identical numbers to the serial path at any worker
// count (DESIGN.md §11).

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "harness/runner.hpp"
#include "harness/scheme_factory.hpp"
#include "harness/sweep.hpp"
#include "resilience/fault.hpp"
#include "sparse/generators.hpp"

namespace rsls {
namespace {

/// RAII guard restoring one environment variable on scope exit.
class EnvGuard {
 public:
  explicit EnvGuard(const char* name) : name_(name) {
    const char* value = std::getenv(name);
    if (value != nullptr) {
      saved_ = value;
    }
  }
  ~EnvGuard() {
    if (saved_.has_value()) {
      ::setenv(name_, saved_->c_str(), 1);
    } else {
      ::unsetenv(name_);
    }
  }
  EnvGuard(const EnvGuard&) = delete;
  EnvGuard& operator=(const EnvGuard&) = delete;

 private:
  const char* name_;
  std::optional<std::string> saved_;
};

harness::GroupSpec small_group(const std::vector<std::string>& schemes,
                               std::uint64_t matrix_seed = 77) {
  harness::GroupSpec group;
  group.label = "banded";
  group.config.processes = 8;
  group.config.faults = 4;
  group.config.scheme.cr_interval_iterations = 25;
  group.make_workload = [matrix_seed] {
    const sparse::Csr a =
        sparse::banded_spd({192, 4, 1.0, 0.02, 1.0, matrix_seed});
    return harness::Workload::create(a, 8, "banded");
  };
  for (const auto& scheme : schemes) {
    group.cells.push_back({scheme, std::nullopt, nullptr});
  }
  return group;
}

void expect_same_run(const harness::SchemeRun& a, const harness::SchemeRun& b) {
  EXPECT_EQ(a.scheme, b.scheme);
  EXPECT_EQ(a.report.cg.iterations, b.report.cg.iterations);
  EXPECT_EQ(a.report.cg.relative_residual,
            b.report.cg.relative_residual);  // bitwise
  EXPECT_EQ(a.report.time, b.report.time);
  EXPECT_EQ(a.report.energy, b.report.energy);
  EXPECT_EQ(a.iteration_ratio, b.iteration_ratio);
  EXPECT_EQ(a.time_ratio, b.time_ratio);
  EXPECT_EQ(a.energy_ratio, b.energy_ratio);
}

TEST(RunnerTest, MatchesSerialRunScheme) {
  const std::vector<std::string> schemes = {"RD", "LI", "CR-M"};
  const auto group = small_group(schemes);

  // Serial reference, straight through the experiment API.
  const auto workload = group.make_workload();
  const auto ff = harness::run_fault_free(workload, group.config);
  std::vector<harness::SchemeRun> reference;
  for (const auto& scheme : schemes) {
    reference.push_back(
        harness::run_scheme(workload, scheme, group.config, ff));
  }

  harness::Runner runner(4);
  const auto result = runner.run_group(group);
  EXPECT_EQ(result.label, "banded");
  EXPECT_EQ(result.ff.iterations, ff.iterations);
  EXPECT_EQ(result.ff.time, ff.time);
  ASSERT_EQ(result.runs.size(), schemes.size());
  for (std::size_t i = 0; i < schemes.size(); ++i) {
    expect_same_run(result.runs[i], reference[i]);
  }
}

TEST(RunnerTest, ParallelBitIdenticalToSerialRunner) {
  const std::vector<std::string> schemes = {"RD", "F0", "LI", "LSI", "CR-D"};
  std::vector<harness::GroupSpec> groups = {small_group(schemes, 77),
                                            small_group(schemes, 123)};
  harness::Runner serial(1);
  harness::Runner parallel(4);
  EXPECT_EQ(serial.jobs(), 1);
  EXPECT_EQ(parallel.jobs(), 4);
  const auto a = serial.run(groups);
  const auto b = parallel.run(groups);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t g = 0; g < a.size(); ++g) {
    EXPECT_EQ(a[g].ff.iterations, b[g].ff.iterations);
    EXPECT_EQ(a[g].ff.energy, b[g].ff.energy);
    ASSERT_EQ(a[g].runs.size(), b[g].runs.size());
    for (std::size_t i = 0; i < a[g].runs.size(); ++i) {
      expect_same_run(a[g].runs[i], b[g].runs[i]);
    }
  }
}

TEST(RunnerTest, CellConfigOverrideApplies) {
  auto group = small_group({"LI", "LI"});
  harness::ExperimentConfig heavier = group.config;
  heavier.faults = 8;
  group.cells[1].config = heavier;

  harness::Runner runner(2);
  const auto result = runner.run_group(group);
  ASSERT_EQ(result.runs.size(), 2u);
  EXPECT_EQ(result.runs[0].report.faults, 4);
  EXPECT_EQ(result.runs[1].report.faults, 8);

  // The override must match the serial run under the same config.
  const auto workload = group.make_workload();
  const auto ff = harness::run_fault_free(workload, group.config);
  expect_same_run(result.runs[1],
                  harness::run_scheme(workload, "LI", heavier, ff));
}

TEST(RunnerTest, CustomBodyReceivesSharedBaseline) {
  auto group = small_group({"RD"});
  std::atomic<int> body_calls{0};
  harness::CellSpec custom;
  custom.scheme = "LI";
  custom.body = [&body_calls](const harness::Workload& workload,
                              const harness::FfBaseline& ff,
                              const harness::ExperimentConfig& config) {
    body_calls.fetch_add(1);
    auto injector = resilience::FaultInjector::evenly_spaced(
        config.faults, ff.iterations, config.processes, config.fault_seed);
    return harness::run_scheme(workload, "LI", config, ff,
                               {.injector = &injector});
  };
  group.cells.push_back(std::move(custom));

  harness::Runner runner(2);
  const auto result = runner.run_group(group);
  EXPECT_EQ(body_calls.load(), 1);
  ASSERT_EQ(result.runs.size(), 2u);
  // Slots stay in cell order regardless of schedule.
  EXPECT_EQ(result.runs[0].scheme, "RD");
  EXPECT_EQ(result.runs[1].scheme, "LI");
  // The custom body's explicit injector mirrors run_scheme's default, so
  // the run must be identical to the plain cell path.
  const auto workload = group.make_workload();
  const auto ff = harness::run_fault_free(workload, group.config);
  expect_same_run(result.runs[1],
                  harness::run_scheme(workload, "LI", group.config, ff));
}

TEST(RunnerTest, CellExceptionRethrownAfterBatchDrains) {
  auto group = small_group({"RD", "LI"});
  harness::CellSpec poison;
  poison.scheme = "boom";
  poison.body = [](const harness::Workload&, const harness::FfBaseline&,
                   const harness::ExperimentConfig&) -> harness::SchemeRun {
    throw std::runtime_error("cell exploded");
  };
  group.cells.push_back(std::move(poison));
  harness::Runner runner(2);
  EXPECT_THROW(runner.run_group(group), std::runtime_error);
}

TEST(RunnerTest, MetricsCountGroupsAndCells) {
  harness::Runner runner(2);
  (void)runner.run({small_group({"RD", "LI"}), small_group({"CR-M"}, 123)});
  const auto snapshot = runner.metrics();
  double groups = 0.0, cells = 0.0;
  for (const auto& [name, value] : snapshot.counters) {
    if (name == "runner.groups") groups = value;
    if (name == "runner.cells") cells = value;
  }
  EXPECT_DOUBLE_EQ(groups, 2.0);
  EXPECT_DOUBLE_EQ(cells, 3.0);
}

TEST(RunnerTest, MetricsIdenticalAcrossJobCounts) {
  // Gauges merge last-write-wins, so the runner must fold cell metrics
  // in spec order (not completion order) for the aggregate snapshot to
  // be schedule-independent.
  const auto make_groups = [] {
    return std::vector<harness::GroupSpec>{small_group({"RD", "LI", "CR-M"}),
                                           small_group({"LSI"}, 123)};
  };
  harness::Runner serial(1);
  harness::Runner parallel(4);
  (void)serial.run(make_groups());
  (void)parallel.run(make_groups());
  const auto a = serial.metrics();
  const auto b = parallel.metrics();
  EXPECT_EQ(a.counters, b.counters);
  EXPECT_EQ(a.gauges, b.gauges);  // bitwise, order included
}

double counter_value(const obs::MetricsSnapshot& snapshot,
                     const std::string& name) {
  for (const auto& [key, value] : snapshot.counters) {
    if (key == name) {
      return value;
    }
  }
  ADD_FAILURE() << "counter " << name << " not found";
  return -1.0;
}

TEST(RunnerTest, CommMetricsArePerRunOnASharedCluster) {
  // A bench that hooks one long-lived cluster through several cells must
  // still get per-run comm.* metrics: the harness snapshots CommStats at
  // cell entry and reports the delta, so two identical runs on the same
  // cluster report identical traffic (a leak would double the second).
  const sparse::Csr a = sparse::banded_spd({192, 4, 1.0, 0.02, 1.0, 77});
  const auto workload = harness::Workload::create(a, 8);
  harness::ExperimentConfig config;
  config.processes = 8;
  config.faults = 4;
  config.observability.enabled = true;
  const auto ff = harness::run_fault_free(workload, config);

  simrt::VirtualCluster cluster(harness::machine_for(config.processes),
                                config.processes);
  const auto first =
      harness::run_scheme(workload, "LI", config, ff, {.cluster = &cluster});
  const auto second =
      harness::run_scheme(workload, "LI", config, ff, {.cluster = &cluster});
  for (const char* name :
       {"comm.messages", "comm.wire_bytes", "comm.allreduces"}) {
    const double a_value = counter_value(first.metrics, name);
    const double b_value = counter_value(second.metrics, name);
    EXPECT_GT(a_value, 0.0) << name;
    EXPECT_EQ(a_value, b_value) << name;  // per-run, not cumulative
  }
}

TEST(RunnerTest, EventLogDroppedSurfacesAsCounter) {
  const sparse::Csr a = sparse::banded_spd({192, 4, 1.0, 0.02, 1.0, 77});
  const auto workload = harness::Workload::create(a, 8);
  harness::ExperimentConfig config;
  config.processes = 8;
  config.faults = 4;
  config.observability.enabled = true;
  const auto ff = harness::run_fault_free(workload, config);

  simrt::VirtualCluster cluster(harness::machine_for(config.processes),
                                config.processes);
  cluster.enable_event_log(/*capacity=*/64);  // tiny: guaranteed eviction
  const auto run =
      harness::run_scheme(workload, "LI", config, ff, {.cluster = &cluster});
  const double dropped = counter_value(run.metrics, "simrt.events_dropped");
  EXPECT_EQ(dropped, static_cast<double>(cluster.event_log().dropped()));
  EXPECT_GT(dropped, 0.0);
}

TEST(SweepParallelTest, RosterSweepBitIdenticalAcrossJobCounts) {
  // The tier-1 determinism gate for the whole stack: a roster sweep under
  // RSLS_JOBS=4 must reproduce the serial sweep bit for bit.
  EnvGuard guard("RSLS_JOBS");
  const std::vector<std::string> matrices = {"crystm02", "stencil5"};
  const std::vector<std::string> schemes = {"RD", "LI", "CR-M"};
  harness::ExperimentConfig config;
  config.processes = 12;
  config.faults = 5;

  ::setenv("RSLS_JOBS", "1", 1);
  const auto serial =
      harness::sweep_matrices(matrices, schemes, config, /*quick=*/true);
  ::setenv("RSLS_JOBS", "4", 1);
  const auto parallel =
      harness::sweep_matrices(matrices, schemes, config, /*quick=*/true);

  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t m = 0; m < serial.size(); ++m) {
    EXPECT_EQ(serial[m].matrix, parallel[m].matrix);
    EXPECT_EQ(serial[m].ff.iterations, parallel[m].ff.iterations);
    EXPECT_EQ(serial[m].ff.time, parallel[m].ff.time);
    EXPECT_EQ(serial[m].ff.energy, parallel[m].ff.energy);
    ASSERT_EQ(serial[m].runs.size(), parallel[m].runs.size());
    for (std::size_t i = 0; i < serial[m].runs.size(); ++i) {
      expect_same_run(serial[m].runs[i], parallel[m].runs[i]);
    }
  }

  // And the aggregated table rows agree exactly too.
  const auto avg_serial = harness::average_over_matrices(serial);
  const auto avg_parallel = harness::average_over_matrices(parallel);
  ASSERT_EQ(avg_serial.size(), avg_parallel.size());
  for (std::size_t s = 0; s < avg_serial.size(); ++s) {
    EXPECT_EQ(avg_serial[s].scheme, avg_parallel[s].scheme);
    EXPECT_EQ(avg_serial[s].time_ratio, avg_parallel[s].time_ratio);
    EXPECT_EQ(avg_serial[s].energy_ratio, avg_parallel[s].energy_ratio);
    EXPECT_EQ(avg_serial[s].power_ratio, avg_parallel[s].power_ratio);
  }
}

}  // namespace
}  // namespace rsls
