// Edge-case and failure-injection tests for the resilience stack:
// boundary ranks, repeated faults on one rank, immediate faults, fault
// bursts, and governor interactions during recovery.

#include <gtest/gtest.h>

#include <cmath>

#include "core/error.hpp"
#include "harness/scheme_factory.hpp"
#include "resilience/forward.hpp"
#include "resilience/resilient_solve.hpp"
#include "sparse/generators.hpp"
#include "sparse/roster.hpp"

namespace rsls::resilience {
namespace {

struct EdgeSetup {
  dist::DistMatrix a;
  RealVec b;
  RealVec x0;

  explicit EdgeSetup(Index n = 96, Index parts = 8)
      : a(sparse::banded_spd({n, 3, 1.0, 0.05, 0.0, 55}), parts),
        b(sparse::make_rhs(a.global())),
        x0(static_cast<std::size_t>(n), 0.0) {}
};

ResilientSolveReport run_with_injector(EdgeSetup& setup, const std::string& name,
                                       FaultInjector injector,
                                       Index parts = 8) {
  harness::SchemeFactoryConfig factory;
  factory.cr_interval_iterations = 10;
  const auto scheme = harness::make_scheme(name, factory, setup.x0);
  simrt::VirtualCluster cluster(simrt::paper_node(), parts,
                                scheme->replica_factor());
  RealVec x = setup.x0;
  solver::CgOptions options;
  options.tolerance = 1e-12;
  return resilient_solve(setup.a, cluster, setup.b, x, *scheme, injector,
                         options);
}

TEST(ResilienceEdgeTest, FaultOnFirstAndLastRank) {
  // Boundary blocks have one-sided halos; recovery must handle both ends.
  for (const Index target : {Index{0}, Index{7}}) {
    EdgeSetup setup;
    auto scheme = ForwardRecovery::li_cg(1e-10);
    simrt::VirtualCluster cluster(simrt::paper_node(), 8);
    RealVec x = setup.x0;
    bool injected = false;
    solver::CgOptions options;
    options.tolerance = 1e-12;
    const auto result = solver::cg_solve(
        setup.a, cluster, setup.b, x, options,
        [&](const solver::CgIterationView& view) {
          if (!injected && view.iteration == 5) {
            injected = true;
            FaultInjector::corrupt_block(setup.a.partition(), target,
                                         view.x);
            RecoveryContext ctx{setup.a, setup.b, cluster};
            return scheme->recover(ctx, view.iteration, target, view.x);
          }
          return solver::HookAction::kContinue;
        });
    EXPECT_TRUE(result.converged) << "rank " << target;
  }
}

TEST(ResilienceEdgeTest, FaultAtVeryFirstIteration) {
  EdgeSetup setup;
  auto injector = FaultInjector::at_iterations({1}, 8, 3);
  const auto report = run_with_injector(setup, "F0", std::move(injector));
  EXPECT_TRUE(report.cg.converged);
  EXPECT_EQ(report.faults, 1);
}

TEST(ResilienceEdgeTest, BackToBackFaults) {
  // Consecutive iterations, possibly the same rank: recovery must not
  // assume quiet periods between faults.
  EdgeSetup setup;
  auto injector = FaultInjector::at_iterations({5, 6, 7}, 8, 4);
  for (const std::string scheme : {"LI", "CR-M", "F0"}) {
    EdgeSetup fresh;
    auto fresh_injector = FaultInjector::at_iterations({5, 6, 7}, 8, 4);
    const auto report =
        run_with_injector(fresh, scheme, std::move(fresh_injector));
    EXPECT_TRUE(report.cg.converged) << scheme;
    EXPECT_EQ(report.recoveries, 3) << scheme;
  }
}

TEST(ResilienceEdgeTest, SingleRankClusterRecovery) {
  // Degenerate "distributed" run: one rank owns everything; LI's block is
  // the whole matrix, so recovery is essentially an exact re-solve.
  EdgeSetup setup(96, 1);
  auto injector = FaultInjector::at_iterations({4}, 1, 5);
  const auto report = run_with_injector(setup, "LI", std::move(injector), 1);
  EXPECT_TRUE(report.cg.converged);
}

TEST(ResilienceEdgeTest, ManyFaultsStillConverge) {
  EdgeSetup setup;
  // A fault every 4 iterations for a long stretch.
  IndexVec iterations;
  for (Index k = 4; k <= 200; k += 4) {
    iterations.push_back(k);
  }
  auto injector = FaultInjector::at_iterations(std::move(iterations), 8, 6);
  const auto report = run_with_injector(setup, "LI", std::move(injector));
  EXPECT_TRUE(report.cg.converged);
  EXPECT_GT(report.recoveries, 10);
}

TEST(ResilienceEdgeTest, RecoveryUnderOndemandGovernor) {
  // The plain-LI + ondemand combination of Fig. 7a must stay numerically
  // identical to the performance-governor run (governors change power,
  // never arithmetic).
  EdgeSetup setup;
  harness::SchemeFactoryConfig factory;
  const auto run_with_gov = [&](std::unique_ptr<power::Governor> gov) {
    const auto scheme = harness::make_scheme("LI", factory, setup.x0);
    simrt::VirtualCluster cluster(simrt::paper_node(), 8);
    cluster.set_governor(std::move(gov));
    auto injector = FaultInjector::evenly_spaced(5, 60, 8, 7);
    RealVec x = setup.x0;
    solver::CgOptions options;
    options.tolerance = 1e-12;
    return resilient_solve(setup.a, cluster, setup.b, x, *scheme, injector,
                           options);
  };
  const auto ondemand = run_with_gov(power::make_ondemand_governor());
  const auto performance = run_with_gov(power::make_performance_governor());
  EXPECT_EQ(ondemand.cg.iterations, performance.cg.iterations);
  EXPECT_NEAR(ondemand.cg.relative_residual,
              performance.cg.relative_residual, 1e-15);
}

TEST(ResilienceEdgeTest, UnevenBlocksRecoverEverywhere) {
  // n not divisible by parts: first blocks are one row larger; every rank
  // must recover cleanly despite differing block sizes.
  EdgeSetup setup(101, 7);
  for (Index target = 0; target < 7; ++target) {
    auto scheme = ForwardRecovery::lsi_cg(1e-10);
    simrt::VirtualCluster cluster(simrt::paper_node(), 7);
    RecoveryContext ctx{setup.a, setup.b, cluster};
    RealVec x(101, 1.0);  // the exact solution
    FaultInjector::corrupt_block(setup.a.partition(), target, x);
    scheme->recover(ctx, 3, target, x);
    for (const Real v : x) {
      EXPECT_FALSE(std::isnan(v)) << "rank " << target;
    }
  }
}

TEST(ResilienceEdgeTest, CorruptionIsNaNUntilRecovered) {
  // Verifies the poison-on-fault discipline end to end: if a scheme is
  // never invoked, the NaNs propagate and CG reports non-convergence
  // rather than a silent wrong answer.
  EdgeSetup setup;
  simrt::VirtualCluster cluster(simrt::paper_node(), 8);
  RealVec x = setup.x0;
  solver::CgOptions options;
  options.tolerance = 1e-12;
  options.max_iterations = 50;
  bool corrupted = false;
  EXPECT_THROW(
      {
        const auto result = solver::cg_solve(
            setup.a, cluster, setup.b, x, options,
            [&](const solver::CgIterationView& view) {
              if (!corrupted && view.iteration == 5) {
                corrupted = true;
                FaultInjector::corrupt_block(setup.a.partition(), 2, view.x);
                return solver::HookAction::kRestart;  // but nobody repaired x
              }
              return solver::HookAction::kContinue;
            });
        // If no exception (NaN p·Ap fails the positivity check), the run
        // must at least not claim convergence.
        EXPECT_FALSE(result.converged);
      },
      Error);
}

}  // namespace
}  // namespace rsls::resilience
