// Unit + property tests: block-row partition arithmetic.

#include <gtest/gtest.h>

#include "core/error.hpp"
#include "dist/partition.hpp"

namespace rsls::dist {
namespace {

TEST(PartitionTest, EvenSplit) {
  const Partition part(12, 4);
  for (Index p = 0; p < 4; ++p) {
    EXPECT_EQ(part.block_rows(p), 3);
    EXPECT_EQ(part.begin(p), p * 3);
  }
}

TEST(PartitionTest, RemainderSpreadOverFirstBlocks) {
  const Partition part(10, 3);  // 4, 3, 3
  EXPECT_EQ(part.block_rows(0), 4);
  EXPECT_EQ(part.block_rows(1), 3);
  EXPECT_EQ(part.block_rows(2), 3);
  EXPECT_EQ(part.begin(0), 0);
  EXPECT_EQ(part.begin(1), 4);
  EXPECT_EQ(part.begin(2), 7);
  EXPECT_EQ(part.end(2), 10);
}

TEST(PartitionTest, OwnerMatchesRanges) {
  const Partition part(10, 3);
  EXPECT_EQ(part.owner(0), 0);
  EXPECT_EQ(part.owner(3), 0);
  EXPECT_EQ(part.owner(4), 1);
  EXPECT_EQ(part.owner(6), 1);
  EXPECT_EQ(part.owner(7), 2);
  EXPECT_EQ(part.owner(9), 2);
}

TEST(PartitionTest, SinglePart) {
  const Partition part(5, 1);
  EXPECT_EQ(part.begin(0), 0);
  EXPECT_EQ(part.end(0), 5);
  EXPECT_EQ(part.owner(4), 0);
}

TEST(PartitionTest, OnePerRow) {
  const Partition part(4, 4);
  for (Index p = 0; p < 4; ++p) {
    EXPECT_EQ(part.block_rows(p), 1);
    EXPECT_EQ(part.owner(p), p);
  }
}

TEST(PartitionTest, RejectsMorePartsThanRows) {
  EXPECT_THROW(Partition(3, 4), Error);
  EXPECT_THROW(Partition(5, 0), Error);
}

// Property sweep: coverage, disjointness, owner consistency, balance.
class PartitionPropertyTest
    : public ::testing::TestWithParam<std::pair<Index, Index>> {};

TEST_P(PartitionPropertyTest, CoversAllRowsExactlyOnce) {
  const auto [n, parts] = GetParam();
  const Partition part(n, parts);
  Index covered = 0;
  for (Index p = 0; p < parts; ++p) {
    EXPECT_EQ(part.begin(p), covered);
    covered = part.end(p);
  }
  EXPECT_EQ(covered, n);
}

TEST_P(PartitionPropertyTest, OwnerAgreesWithRanges) {
  const auto [n, parts] = GetParam();
  const Partition part(n, parts);
  for (Index i = 0; i < n; ++i) {
    const Index p = part.owner(i);
    EXPECT_GE(i, part.begin(p));
    EXPECT_LT(i, part.end(p));
  }
}

TEST_P(PartitionPropertyTest, BalancedWithinOne) {
  const auto [n, parts] = GetParam();
  const Partition part(n, parts);
  Index smallest = n;
  Index largest = 0;
  for (Index p = 0; p < parts; ++p) {
    smallest = std::min(smallest, part.block_rows(p));
    largest = std::max(largest, part.block_rows(p));
  }
  EXPECT_LE(largest - smallest, 1);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, PartitionPropertyTest,
    ::testing::Values(std::pair<Index, Index>{1, 1},
                      std::pair<Index, Index>{7, 3},
                      std::pair<Index, Index>{100, 7},
                      std::pair<Index, Index>{192, 192},
                      std::pair<Index, Index>{1000, 256},
                      std::pair<Index, Index>{65536, 192},
                      std::pair<Index, Index>{420, 192},
                      std::pair<Index, Index>{13965, 256}));

}  // namespace
}  // namespace rsls::dist
